"""Partitions: node -> community assignments with convenience views."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Mapping

from ..exceptions import CommunityError
from ..serialize import check_envelope, decode_assignment, encode_assignment

NodeKey = Hashable


@dataclass(frozen=True)
class Partition:
    """An immutable assignment of nodes to integer community labels.

    Labels are normalised at construction: communities are renumbered
    1..k by decreasing size (ties broken by their smallest node's
    repr), matching the paper's habit of numbering its communities.
    """

    assignment: Mapping[NodeKey, int]

    @classmethod
    def from_assignment(cls, assignment: Mapping[NodeKey, int]) -> "Partition":
        """Build a normalised partition from any labelling."""
        if not assignment:
            raise CommunityError("cannot build an empty partition")
        groups: dict[int, list[NodeKey]] = {}
        for node, label in assignment.items():
            groups.setdefault(label, []).append(node)
        ordered = sorted(
            groups.values(),
            key=lambda members: (-len(members), min(repr(node) for node in members)),
        )
        relabelled: dict[NodeKey, int] = {}
        for new_label, members in enumerate(ordered, start=1):
            for node in members:
                relabelled[node] = new_label
        return cls(assignment=relabelled)

    @classmethod
    def from_communities(cls, communities: Iterable[Iterable[NodeKey]]) -> "Partition":
        """Build from an iterable of node groups."""
        assignment: dict[NodeKey, int] = {}
        for label, members in enumerate(communities, start=1):
            for node in members:
                if node in assignment:
                    raise CommunityError(f"node {node!r} appears in two communities")
                assignment[node] = label
        return cls.from_assignment(assignment)

    def __getitem__(self, node: NodeKey) -> int:
        return self.assignment[node]

    def __contains__(self, node: NodeKey) -> bool:
        return node in self.assignment

    def __len__(self) -> int:
        return len(self.assignment)

    @property
    def n_communities(self) -> int:
        """Number of distinct communities."""
        return len(set(self.assignment.values()))

    def labels(self) -> list[int]:
        """Sorted distinct community labels."""
        return sorted(set(self.assignment.values()))

    def communities(self) -> dict[int, set[NodeKey]]:
        """Label -> member set."""
        groups: dict[int, set[NodeKey]] = {}
        for node, label in self.assignment.items():
            groups.setdefault(label, set()).add(node)
        return groups

    def community_of(self, node: NodeKey) -> int:
        """Label of ``node``'s community."""
        return self.assignment[node]

    def sizes(self) -> dict[int, int]:
        """Label -> community size."""
        sizes: dict[int, int] = {}
        for label in self.assignment.values():
            sizes[label] = sizes.get(label, 0) + 1
        return sizes

    def restricted_to(self, nodes: Iterable[NodeKey]) -> "Partition":
        """The partition restricted to a node subset (renormalised)."""
        keep = {node: self.assignment[node] for node in nodes if node in self.assignment}
        return Partition.from_assignment(keep)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe envelope (tuple node keys become lists)."""
        return {
            "type": "Partition",
            "assignment": encode_assignment(self.assignment),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Partition":
        """Rebuild a partition from :meth:`to_dict` output.

        Labels are restored verbatim (they were normalised when the
        original partition was built), so the round trip is exact.
        """
        check_envelope(payload, "Partition")
        return cls(assignment=decode_assignment(payload["assignment"]))
