"""Asynchronous weighted label propagation (paper's future-work list).

Each node starts in its own community and repeatedly adopts the label
carrying the largest total incident edge weight among its neighbours,
ties broken with the seeded RNG.  Convergence is declared when a full
sweep changes nothing (or after ``max_iters`` sweeps — LPA can
oscillate on bipartite-ish structures).
"""

from __future__ import annotations

import random

from ..exceptions import CommunityError
from ..graphdb import WeightedGraph
from .partition import Partition


def label_propagation(
    graph: WeightedGraph, seed: int = 7, max_iters: int = 100
) -> Partition:
    """Run asynchronous LPA; returns the final partition."""
    nodes = list(graph.nodes())
    if not nodes:
        raise CommunityError("label propagation needs a non-empty graph")
    rng = random.Random(seed)
    label = {node: index for index, node in enumerate(nodes)}

    for _ in range(max_iters):
        rng.shuffle(nodes)
        changed = False
        for node in nodes:
            weights: dict[int, float] = {}
            for neighbour, weight in graph.neighbours(node).items():
                if neighbour == node:
                    continue
                weights[label[neighbour]] = weights.get(label[neighbour], 0.0) + weight
            if not weights:
                continue
            best = max(weights.values())
            candidates = sorted(
                candidate for candidate, weight in weights.items()
                if weight >= best - 1e-12
            )
            choice = candidates[rng.randrange(len(candidates))]
            if choice != label[node]:
                label[node] = choice
                changed = True
        if not changed:
            break
    return Partition.from_assignment(label)
