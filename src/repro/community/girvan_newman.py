"""Girvan-Newman divisive community detection.

The classic edge-betweenness algorithm: repeatedly remove the edge with
the highest betweenness and keep the component split with the best
modularity.  O(m^2 n)-ish, so it is practical only for the station-level
graphs here (a few hundred nodes) — which is exactly where the paper's
future-work algorithm comparison needs it.
"""

from __future__ import annotations

import heapq
from collections import deque

from ..config import CommunityConfig
from ..exceptions import CommunityError
from ..graphdb import NodeKey, WeightedGraph
from .modularity import modularity
from .partition import Partition


def edge_betweenness(
    graph: WeightedGraph, use_weights: bool = True
) -> dict[tuple[NodeKey, NodeKey], float]:
    """Brandes-style edge betweenness (weights as flows, cost 1/w)."""
    scores: dict[tuple[NodeKey, NodeKey], float] = {}
    nodes = list(graph.nodes())
    costs: dict[NodeKey, dict[NodeKey, float]] = {
        node: {
            neighbour: (1.0 / weight if use_weights else 1.0)
            for neighbour, weight in graph.neighbours(node).items()
            if neighbour != node and weight > 0
        }
        for node in nodes
    }

    for source in nodes:
        stack: list[NodeKey] = []
        predecessors: dict[NodeKey, list[NodeKey]] = {n: [] for n in nodes}
        sigma = {n: 0.0 for n in nodes}
        sigma[source] = 1.0
        distance: dict[NodeKey, float] = {}
        seen = {source: 0.0}
        counter = 0
        heap: list[tuple[float, int, NodeKey]] = [(0.0, counter, source)]
        while heap:
            dist, _, current = heapq.heappop(heap)
            if current in distance:
                continue
            distance[current] = dist
            stack.append(current)
            for neighbour, cost in costs[current].items():
                alt = dist + cost
                if neighbour in distance:
                    if distance[neighbour] == alt:
                        sigma[neighbour] += sigma[current]
                        predecessors[neighbour].append(current)
                    continue
                if neighbour not in seen or alt < seen[neighbour]:
                    seen[neighbour] = alt
                    counter += 1
                    heapq.heappush(heap, (alt, counter, neighbour))
                    sigma[neighbour] = sigma[current]
                    predecessors[neighbour] = [current]
                elif seen[neighbour] == alt:
                    sigma[neighbour] += sigma[current]
                    predecessors[neighbour].append(current)

        delta = {n: 0.0 for n in nodes}
        while stack:
            w = stack.pop()
            for v in predecessors[w]:
                share = (sigma[v] / sigma[w]) * (1.0 + delta[w])
                key = (v, w) if (v, w) in scores or (w, v) not in scores else (w, v)
                scores[key] = scores.get(key, 0.0) + share
                delta[v] += share

    # Each undirected pair counted from both endpoints.
    merged: dict[tuple[NodeKey, NodeKey], float] = {}
    for (u, v), value in scores.items():
        key = (u, v) if (v, u) not in merged else (v, u)
        merged[key] = merged.get(key, 0.0) + value / 2.0
    return merged


def _components_partition(graph: WeightedGraph) -> Partition:
    return Partition.from_communities(graph.connected_components())


def girvan_newman(
    graph: WeightedGraph,
    config: CommunityConfig | None = None,
    max_communities: int | None = None,
) -> Partition:
    """Run Girvan-Newman; returns the best-modularity split found.

    ``max_communities`` stops early once the split reaches that many
    components (useful on larger graphs).
    """
    cfg = config or CommunityConfig()
    if graph.total_weight <= 0:
        raise CommunityError("girvan_newman needs a graph with positive weight")
    working = graph.copy()
    best = _components_partition(working)
    best_score = modularity(graph, best, cfg.resolution)

    while working.edge_count > 0:
        scores = edge_betweenness(working)
        if not scores:
            break
        (u, v), _ = max(
            scores.items(), key=lambda item: (item[1], repr(item[0]))
        )
        _remove_edge(working, u, v)
        current = _components_partition(working)
        score = modularity(graph, current, cfg.resolution)
        if score > best_score:
            best_score = score
            best = current
        if (
            max_communities is not None
            and current.n_communities >= max_communities
        ):
            break
    return best


def _remove_edge(graph: WeightedGraph, u: NodeKey, v: NodeKey) -> None:
    """Remove one undirected edge in place."""
    adjacency = graph.neighbours(u)
    adjacency.pop(v, None)
    if u != v:
        graph.neighbours(v).pop(u, None)
