"""Community-detection substrate: Louvain, LPA, CNM, map equation, multislice."""

from .consensus import ConsensusResult, consensus_louvain
from .fast_greedy import fast_greedy, fast_greedy_with_score
from .girvan_newman import edge_betweenness, girvan_newman
from .infomap import MapEquationResult, infomap, map_equation
from .label_propagation import label_propagation
from .louvain import LouvainResult, louvain
from .modularity import modularity
from .null_model import (
    SignificanceResult,
    partition_significance,
    rewire_degree_preserving,
)
from .partition import Partition
from .similarity import adjusted_rand_index, normalized_mutual_information
from .temporal import (
    TemporalCommunityResult,
    build_sliced_graph,
    collapse_to_stations,
    detect_temporal_communities,
)

__all__ = [
    "ConsensusResult",
    "LouvainResult",
    "MapEquationResult",
    "Partition",
    "SignificanceResult",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "TemporalCommunityResult",
    "build_sliced_graph",
    "collapse_to_stations",
    "detect_temporal_communities",
    "consensus_louvain",
    "edge_betweenness",
    "fast_greedy",
    "fast_greedy_with_score",
    "girvan_newman",
    "infomap",
    "label_propagation",
    "louvain",
    "map_equation",
    "modularity",
    "partition_significance",
    "rewire_degree_preserving",
]
