"""Fast-greedy (CNM) modularity maximisation.

Clauset-Newman-Moore agglomeration: start from singletons and repeatedly
merge the community pair with the largest positive modularity gain.
Related work in the paper (Zhou 2015) uses exactly this algorithm; here
it also serves as a second opinion in the algorithm-comparison bench.

The implementation keeps the standard *e*/*a* bookkeeping: ``e[c][d]``
is the fraction of total edge weight between communities c and d, and
``a[c]`` the fraction of edge endpoints in c; merging c and d changes
modularity by ``2 * (e[c][d] - a[c] * a[d])`` (with a resolution knob).
"""

from __future__ import annotations

from ..config import CommunityConfig
from ..exceptions import CommunityError
from ..graphdb import WeightedGraph
from .modularity import modularity
from .partition import Partition


def fast_greedy(
    graph: WeightedGraph, config: CommunityConfig | None = None
) -> Partition:
    """Run CNM agglomeration; returns the best-modularity partition."""
    cfg = config or CommunityConfig()
    total = graph.total_weight
    if total <= 0:
        raise CommunityError("fast_greedy needs a graph with positive weight")
    two_m = 2.0 * total

    nodes = list(graph.nodes())
    community_of = {node: index for index, node in enumerate(nodes)}
    members: dict[int, list] = {index: [node] for index, node in enumerate(nodes)}
    # e[c][d]: fraction of edge weight between c and d (d != c), and
    # e[c][c]: fraction of weight inside c (loops, counted once / m).
    e: dict[int, dict[int, float]] = {index: {} for index in members}
    a: dict[int, float] = {index: 0.0 for index in members}
    for node in nodes:
        a[community_of[node]] += graph.strength(node) / two_m
    for u, v, weight in graph.edges():
        cu, cv = community_of[u], community_of[v]
        share = weight / total
        if cu == cv:
            e[cu][cu] = e[cu].get(cu, 0.0) + share
        else:
            e[cu][cv] = e[cu].get(cv, 0.0) + share
            e[cv][cu] = e[cv].get(cu, 0.0) + share

    def merge_gain(c: int, d: int) -> float:
        # Off-diagonal e holds the full between-weight fraction; the
        # standard dQ uses half-shares, hence the formula below.
        return e[c].get(d, 0.0) - 2.0 * cfg.resolution * a[c] * a[d]

    while len(members) > 1:
        best_pair: tuple[int, int] | None = None
        best_gain = 0.0
        for c in sorted(e):
            for d in sorted(e[c]):
                if d <= c:
                    continue
                gain = merge_gain(c, d)
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_pair = (c, d)
        if best_pair is None:
            break
        c, d = best_pair
        # Merge d into c.
        members[c].extend(members.pop(d))
        for neighbour, weight in list(e.pop(d).items()):
            if neighbour == d:
                e[c][c] = e[c].get(c, 0.0) + weight
                continue
            e[neighbour].pop(d, None)
            if neighbour == c:
                e[c][c] = e[c].get(c, 0.0) + weight
            else:
                e[c][neighbour] = e[c].get(neighbour, 0.0) + weight
                e[neighbour][c] = e[neighbour].get(c, 0.0) + weight
        a[c] += a.pop(d)

    return Partition.from_communities(members.values())


def fast_greedy_with_score(
    graph: WeightedGraph, config: CommunityConfig | None = None
) -> tuple[Partition, float]:
    """CNM partition plus its modularity."""
    cfg = config or CommunityConfig()
    partition = fast_greedy(graph, cfg)
    return partition, modularity(graph, partition, cfg.resolution)
