"""Partition-similarity measures: NMI and ARI.

The paper's future work calls for comparing community-detection
algorithms; doing that quantitatively needs partition-agreement scores.
Both classics are implemented over :class:`Partition` pairs sharing a
node set: normalised mutual information (arithmetic normalisation, as
in scikit-learn's default) and the adjusted Rand index.
"""

from __future__ import annotations

import math

from ..exceptions import CommunityError
from .partition import Partition


def _contingency(a: Partition, b: Partition) -> tuple[dict, dict, dict, int]:
    nodes = set(a.assignment)
    if nodes != set(b.assignment):
        raise CommunityError("partitions must cover the same node set")
    joint: dict[tuple[int, int], int] = {}
    count_a: dict[int, int] = {}
    count_b: dict[int, int] = {}
    for node in nodes:
        label_a, label_b = a[node], b[node]
        joint[(label_a, label_b)] = joint.get((label_a, label_b), 0) + 1
        count_a[label_a] = count_a.get(label_a, 0) + 1
        count_b[label_b] = count_b.get(label_b, 0) + 1
    return joint, count_a, count_b, len(nodes)


def normalized_mutual_information(a: Partition, b: Partition) -> float:
    """NMI in [0, 1]; 1 for identical partitions.

    Uses arithmetic-mean normalisation: NMI = 2 I(A;B) / (H(A)+H(B)).
    Two trivial (single-community) partitions score 1 by convention.
    """
    joint, count_a, count_b, n = _contingency(a, b)

    def entropy(counts: dict[int, int]) -> float:
        return -sum(
            (c / n) * math.log(c / n) for c in counts.values() if c > 0
        )

    h_a, h_b = entropy(count_a), entropy(count_b)
    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    if h_a == 0.0 or h_b == 0.0:
        return 0.0
    mutual = 0.0
    for (label_a, label_b), c in joint.items():
        p_joint = c / n
        p_a = count_a[label_a] / n
        p_b = count_b[label_b] / n
        mutual += p_joint * math.log(p_joint / (p_a * p_b))
    return max(0.0, min(1.0, 2.0 * mutual / (h_a + h_b)))


def adjusted_rand_index(a: Partition, b: Partition) -> float:
    """ARI in [-1, 1]; 1 for identical partitions, ~0 for random ones."""
    joint, count_a, count_b, n = _contingency(a, b)

    def comb2(x: int) -> float:
        return x * (x - 1) / 2.0

    sum_joint = sum(comb2(c) for c in joint.values())
    sum_a = sum(comb2(c) for c in count_a.values())
    sum_b = sum(comb2(c) for c in count_b.values())
    total = comb2(n)
    if total == 0:
        return 1.0
    expected = sum_a * sum_b / total
    maximum = (sum_a + sum_b) / 2.0
    if maximum == expected:
        return 1.0
    return (sum_joint - expected) / (maximum - expected)
