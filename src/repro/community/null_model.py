"""Partition-significance testing against a degree-preserving null.

The paper cites Signorelli & Cutillo [33] on community-structure
validation: a partition is meaningful when its modularity exceeds what
degree-preserving randomisations of the same graph achieve.  This
module implements the standard double-edge-swap null model and a
z-score significance test used by the extended validation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..exceptions import CommunityError
from ..graphdb import WeightedGraph
from .louvain import louvain
from .modularity import modularity
from .partition import Partition


def rewire_degree_preserving(
    graph: WeightedGraph, n_swaps: int | None = None, seed: int = 7
) -> WeightedGraph:
    """Randomise a graph with double edge swaps.

    Each swap picks two edges (a-b, c-d) and rewires them to (a-d, c-b)
    unless that would create a duplicate edge or a self-loop.  Node
    degrees (by distinct neighbours) are exactly preserved; weights
    travel with their edges.  Self-loops are kept in place.
    """
    rng = random.Random(seed)
    edges = [(u, v, w) for u, v, w in graph.edges() if u != v]
    loops = [(u, v, w) for u, v, w in graph.edges() if u == v]
    if len(edges) < 2:
        return graph.copy()
    swaps = n_swaps if n_swaps is not None else 10 * len(edges)

    edge_set = {frozenset((u, v)) for u, v, _ in edges}
    for _ in range(swaps):
        i, j = rng.randrange(len(edges)), rng.randrange(len(edges))
        if i == j:
            continue
        a, b, w_ab = edges[i]
        c, d, w_cd = edges[j]
        if len({a, b, c, d}) < 4:
            continue
        if frozenset((a, d)) in edge_set or frozenset((c, b)) in edge_set:
            continue
        edge_set.discard(frozenset((a, b)))
        edge_set.discard(frozenset((c, d)))
        edge_set.add(frozenset((a, d)))
        edge_set.add(frozenset((c, b)))
        edges[i] = (a, d, w_ab)
        edges[j] = (c, b, w_cd)

    rewired = WeightedGraph()
    for node in graph.nodes():
        rewired.add_node(node)
    for u, v, w in edges + loops:
        rewired.add_edge(u, v, w)
    return rewired


@dataclass(frozen=True)
class SignificanceResult:
    """Observed modularity against the null distribution."""

    observed: float
    null_mean: float
    null_std: float
    n_samples: int

    @property
    def z_score(self) -> float:
        """(observed - null mean) / null std; inf when the null is flat."""
        if self.null_std <= 0:
            return float("inf") if self.observed > self.null_mean else 0.0
        return (self.observed - self.null_mean) / self.null_std

    @property
    def is_significant(self) -> bool:
        """Conventional z > 2 cutoff."""
        return self.z_score > 2.0


def partition_significance(
    graph: WeightedGraph,
    partition: Partition,
    n_samples: int = 20,
    seed: int = 7,
) -> SignificanceResult:
    """Compare a partition's modularity against rewired-graph optima.

    For each sample the graph is rewired degree-preservingly and
    Louvain is run on it; the sample statistic is the *best* modularity
    the null graph supports.  A real community structure scores far
    above that distribution.
    """
    if n_samples < 2:
        raise CommunityError("need at least two null samples")
    observed = modularity(graph, partition)
    scores = []
    for sample in range(n_samples):
        rewired = rewire_degree_preserving(graph, seed=seed + sample)
        if rewired.total_weight <= 0:
            scores.append(0.0)
            continue
        from ..config import CommunityConfig

        scores.append(
            louvain(rewired, CommunityConfig(seed=seed + sample)).modularity
        )
    mean = sum(scores) / len(scores)
    variance = sum((s - mean) ** 2 for s in scores) / (len(scores) - 1)
    return SignificanceResult(
        observed=observed,
        null_mean=mean,
        null_std=variance**0.5,
        n_samples=n_samples,
    )
