"""The Louvain algorithm (paper Section IV-C), from scratch.

Standard two-phase scheme (Blondel et al. 2008): repeated local moves
maximising the modularity gain, then aggregation of communities into
super-nodes, iterated until no pass improves modularity.  The paper
chose Louvain for its rapid convergence, high modularity, hierarchical
partitioning and weighted-edge support — all present here.

Determinism: node visit order is shuffled with a seeded RNG, so results
are reproducible for a given (graph, seed).

Implementation note: the local-moving and aggregation phases run on an
integer-indexed flattening of the graph — adjacency as prebuilt
``(index, weight)`` pair lists, cached strengths, community labels and
scratch accumulators as flat lists — because hashing the
``(station, slice)`` tuple keys of the multislice graphs dominated the
historical dict-keyed kernel.  Every float is accumulated in the same
order as that kernel (snapshotted in :mod:`repro.perf.baseline`), so
results are bit-identical; ``tests/test_community_louvain.py`` pins the
equivalence on seeded random graphs and the golden suite pins it at
paper scale.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Mapping

from ..config import CommunityConfig
from ..exceptions import CommunityError
from ..graphdb import NodeKey, WeightedGraph
from ..serialize import check_envelope
from .modularity import modularity
from .partition import Partition

#: Strict-improvement threshold: a move must beat staying put by more
#: than this.  Maximum-gain ties break to the smallest community label;
#: when two candidate gains land within one threshold window of each
#: other the historical ascending-label fold is replayed exactly
#: (see ``_LocalState._fold_candidate``), so selection matches the
#: pre-rewrite kernel bit for bit in every case.
_GAIN_EPS = 1e-12


@dataclass(frozen=True)
class LouvainResult:
    """Final partition, its modularity, and the per-level hierarchy."""

    partition: Partition
    modularity: float
    levels: tuple[Partition, ...]

    @property
    def n_communities(self) -> int:
        """Number of communities in the final partition."""
        return self.partition.n_communities

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe envelope, hierarchy levels included."""
        return {
            "type": "LouvainResult",
            "partition": self.partition.to_dict(),
            "modularity": self.modularity,
            "levels": [level.to_dict() for level in self.levels],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LouvainResult":
        """Exact inverse of :meth:`to_dict`."""
        check_envelope(payload, "LouvainResult")
        return cls(
            partition=Partition.from_dict(payload["partition"]),
            modularity=payload["modularity"],
            levels=tuple(
                Partition.from_dict(level) for level in payload["levels"]
            ),
        )


class _LocalState:
    """Mutable state of one local-moving pass over one (meta-)graph.

    ``nodes[i]`` is the key of the node at index ``i``; ``adj[i]`` its
    full adjacency (self-loop included) as ``(index, weight)`` pairs in
    the underlying graph's insertion order — the order every float
    accumulation below depends on.
    """

    def __init__(
        self,
        nodes: list[NodeKey],
        adj: list[list[tuple[int, float]]],
        resolution: float,
    ) -> None:
        self.nodes = nodes
        self.adj = adj
        self.resolution = resolution
        # Same accumulation order as WeightedGraph.strength /
        # total_weight: adjacency values in insertion order, the loop
        # counted twice; m sums node strengths in node order.
        strength: list[float] = []
        # Loop-free adjacency view for the sweep; rows without a
        # self-loop (the common case) share the full row's list.
        sweep_adj: list[list[tuple[int, float]]] = []
        for index, pairs in enumerate(adj):
            loop = 0.0
            total = 0.0
            has_loop = False
            for neighbour, weight in pairs:
                total += weight
                if neighbour == index:
                    loop = weight
                    has_loop = True
            strength.append(total + loop)
            sweep_adj.append(
                [pair for pair in pairs if pair[0] != index] if has_loop else pairs
            )
        self.strength = strength
        self._sweep_adj = sweep_adj
        self.m = sum(strength) / 2.0
        if self.m <= 0:
            raise CommunityError("Louvain needs a graph with positive weight")
        self.two_m = 2.0 * self.m
        n = len(nodes)
        self.community: list[int] = list(range(n))
        self.comm_strength: list[float] = list(strength)
        # Scratch for per-move neighbour-community weights, reused
        # across moves and invalidated by stamp instead of clearing.
        self._scratch: list[float] = [0.0] * n
        self._mark: list[int] = [0] * n
        self._stamp = 0

    @classmethod
    def from_graph(cls, graph: WeightedGraph, resolution: float) -> "_LocalState":
        """Flatten a :class:`WeightedGraph` (level 0 of the hierarchy)."""
        nodes = list(graph.nodes())
        index_of = {node: index for index, node in enumerate(nodes)}
        adj = [
            [
                (index_of[neighbour], weight)
                for neighbour, weight in graph.neighbours(node).items()
            ]
            for node in nodes
        ]
        return cls(nodes, adj, resolution)

    def community_map(self) -> dict[NodeKey, int]:
        """Node key -> community label, for the compaction layer."""
        return dict(zip(self.nodes, self.community))

    # ------------------------------------------------------------------
    # Local moving
    # ------------------------------------------------------------------

    def move_node(self, index: int) -> bool:
        """Try to improve modularity by relocating node ``index``."""
        return self._sweep((index,))

    def one_pass(self, rng: random.Random) -> bool:
        """One sweep over all nodes; True when anything moved.

        Shuffling index positions consumes the RNG identically to a
        shuffle of the node-key list, so visit order (and every
        downstream number) matches the historical kernel.
        """
        order = list(range(len(self.nodes)))
        rng.shuffle(order)
        return self._sweep(order)

    def _sweep(self, order) -> bool:
        """Visit ``order``'s nodes once each; True when anything moved.

        The move body is inlined here (one function call per pass, not
        per node).  For each node: accumulate neighbour-community
        weights and track the best move in the same scan — a
        community's weight only grows, so its partial gains never
        exceed its final gain and the final gain is the last partial,
        which makes the running maximum over partials equal the
        maximum over final gains, min label on ties.  The candidates'
        comm_strength entries are stable during the scan (only the
        current community gets detached, and it is excluded from the
        scan), so partial gains use the same operands a separate final
        evaluation would.
        """
        community = self.community
        comm_strength = self.comm_strength
        node_strength = self.strength
        sweep_adj = self._sweep_adj
        scratch = self._scratch
        mark = self._mark
        two_m = self.two_m
        resolution = self.resolution
        stamp = self._stamp
        neg_inf = -math.inf
        moved = False

        for index in order:
            stamp += 1
            current = community[index]
            strength = node_strength[index]
            res_strength = resolution * strength

            move_label = -1
            move_gain = neg_inf
            runner_up = neg_inf
            for neighbour, weight in sweep_adj[index]:
                label = community[neighbour]
                if mark[label] != stamp:
                    mark[label] = stamp
                    accumulated = scratch[label] = weight
                else:
                    accumulated = scratch[label] = scratch[label] + weight
                if label == current:
                    continue
                gain = accumulated - (res_strength * comm_strength[label] / two_m)
                if gain > move_gain:
                    runner_up = move_gain
                    move_gain = gain
                    move_label = label
                elif gain == move_gain:
                    if label < move_label:
                        move_label = label
                elif gain > runner_up:
                    runner_up = gain

            # Detach the node (and re-attach below even when staying
            # put — the float trajectory is part of exactness).
            comm_strength[current] -= strength
            weight_to_current = scratch[current] if mark[current] == stamp else 0.0
            best_gain = weight_to_current - (
                res_strength * comm_strength[current] / two_m
            )
            if move_label >= 0 and runner_up >= move_gain - 2.0 * _GAIN_EPS:
                # A runner-up gain sits inside the hysteresis window:
                # the historical ascending-label fold could settle on
                # it instead of the maximum.  Replay that fold exactly
                # (rare — it needs two candidate gains within ~1e-12).
                move_label = self._fold_candidate(
                    index, current, res_strength, best_gain, stamp
                )
                if move_label != current:
                    community[index] = move_label
                    comm_strength[move_label] += strength
                    moved = True
                else:
                    comm_strength[current] += strength
            elif move_label >= 0 and move_gain > best_gain + _GAIN_EPS:
                community[index] = move_label
                comm_strength[move_label] += strength
                moved = True
            else:
                comm_strength[current] += strength

        self._stamp = stamp
        return moved

    def _fold_candidate(
        self,
        index: int,
        current: int,
        res_strength: float,
        stay_gain: float,
        stamp: int,
    ) -> int:
        """The historical ascending-label fold over this node's options.

        Replays the pre-rewrite selection verbatim: labels in ascending
        order, a candidate displaces the running best only by beating
        it by more than :data:`_GAIN_EPS`.  Only consulted when two
        candidate gains fall inside one hysteresis window of each other
        — the single-scan maximum is provably identical otherwise — so
        the ``sorted()`` here is off the hot path.
        """
        community = self.community
        comm_strength = self.comm_strength
        scratch = self._scratch
        mark = self._mark
        two_m = self.two_m
        labels = sorted(
            {
                community[neighbour]
                for neighbour, _ in self._sweep_adj[index]
                if mark[community[neighbour]] == stamp
            }
        )
        best_label = current
        best_gain = stay_gain
        for label in labels:
            if label == current:
                continue
            gain = scratch[label] - (res_strength * comm_strength[label] / two_m)
            if gain > best_gain + _GAIN_EPS:
                best_gain = gain
                best_label = label
        return best_label

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def aggregate(self, compact: list[int]) -> "_LocalState":
        """Collapse communities into the next level's state.

        ``compact`` maps each node index to its compacted community
        label.  Replicates the historical ``WeightedGraph`` aggregation
        exactly: meta-nodes appear in first-appearance order scanning
        nodes in index order, and edge weights accumulate scanning each
        undirected edge once — lower-index endpoint first, adjacency
        insertion order within a row, loops included.
        """
        pos_of: dict[int, int] = {}
        meta_nodes: list[NodeKey] = []
        for label in compact:
            if label not in pos_of:
                pos_of[label] = len(meta_nodes)
                meta_nodes.append(label)
        meta_adj_maps: list[dict[int, float]] = [{} for _ in meta_nodes]
        for u, pairs in enumerate(self.adj):
            mu = pos_of[compact[u]]
            row = meta_adj_maps[mu]
            for v, weight in pairs:
                if v < u:
                    continue
                mv = pos_of[compact[v]]
                row[mv] = row.get(mv, 0.0) + weight
                if mu != mv:
                    other = meta_adj_maps[mv]
                    other[mu] = other.get(mu, 0.0) + weight
        meta_adj = [list(row.items()) for row in meta_adj_maps]
        return _LocalState(meta_nodes, meta_adj, self.resolution)


def louvain(
    graph: WeightedGraph, config: CommunityConfig | None = None
) -> LouvainResult:
    """Run Louvain on a weighted undirected graph.

    Returns the highest-modularity partition found along with every
    intermediate hierarchy level (coarse to fine ordering of the
    original paper: ``levels[0]`` is the first, finest aggregation).
    """
    cfg = config or CommunityConfig()
    rng = random.Random(cfg.seed)

    # node -> community in terms of the *original* nodes.
    mapping: dict[NodeKey, NodeKey] = {node: node for node in graph.nodes()}
    state = _LocalState.from_graph(graph, cfg.resolution)
    levels: list[Partition] = []

    for _ in range(cfg.max_passes):
        improved_any = False
        for _ in range(cfg.max_passes):
            if not state.one_pass(rng):
                break
            improved_any = True
        if not improved_any:
            break
        # Compact labels and record this level on the original nodes.
        assignment = state.community_map()
        labels = sorted(set(state.community))
        compact_of = {label: index for index, label in enumerate(labels)}
        community = {node: compact_of[label] for node, label in assignment.items()}
        mapping = {node: community[mapping[node]] for node in mapping}
        levels.append(Partition.from_assignment(mapping))
        if len(labels) == len(assignment):
            break  # no aggregation happened; fixed point
        state = state.aggregate(
            [compact_of[label] for label in state.community]
        )

    if not levels:
        # Graph was already optimal as singletons.
        levels.append(
            Partition.from_assignment(
                {node: index for index, node in enumerate(graph.nodes())}
            )
        )
        mapping = dict(levels[-1].assignment)

    final = levels[-1]
    return LouvainResult(
        partition=final,
        modularity=modularity(graph, final, cfg.resolution),
        levels=tuple(levels),
    )
