"""The Louvain algorithm (paper Section IV-C), from scratch.

Standard two-phase scheme (Blondel et al. 2008): repeated local moves
maximising the modularity gain, then aggregation of communities into
super-nodes, iterated until no pass improves modularity.  The paper
chose Louvain for its rapid convergence, high modularity, hierarchical
partitioning and weighted-edge support — all present here.

Determinism: node visit order is shuffled with a seeded RNG, so results
are reproducible for a given (graph, seed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping

from ..config import CommunityConfig
from ..exceptions import CommunityError
from ..graphdb import NodeKey, WeightedGraph
from ..serialize import check_envelope
from .modularity import modularity
from .partition import Partition


@dataclass(frozen=True)
class LouvainResult:
    """Final partition, its modularity, and the per-level hierarchy."""

    partition: Partition
    modularity: float
    levels: tuple[Partition, ...]

    @property
    def n_communities(self) -> int:
        """Number of communities in the final partition."""
        return self.partition.n_communities

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe envelope, hierarchy levels included."""
        return {
            "type": "LouvainResult",
            "partition": self.partition.to_dict(),
            "modularity": self.modularity,
            "levels": [level.to_dict() for level in self.levels],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LouvainResult":
        """Exact inverse of :meth:`to_dict`."""
        check_envelope(payload, "LouvainResult")
        return cls(
            partition=Partition.from_dict(payload["partition"]),
            modularity=payload["modularity"],
            levels=tuple(
                Partition.from_dict(level) for level in payload["levels"]
            ),
        )


class _LocalState:
    """Mutable state of one local-moving pass over one (meta-)graph."""

    def __init__(self, graph: WeightedGraph, resolution: float) -> None:
        self.graph = graph
        self.resolution = resolution
        self.m = graph.total_weight
        if self.m <= 0:
            raise CommunityError("Louvain needs a graph with positive weight")
        self.community: dict[NodeKey, int] = {}
        self.comm_strength: dict[int, float] = {}
        for index, node in enumerate(graph.nodes()):
            self.community[node] = index
            self.comm_strength[index] = graph.strength(node)

    def neighbour_community_weights(self, node: NodeKey) -> dict[int, float]:
        """Community -> total weight of edges from ``node`` (loops skipped)."""
        weights: dict[int, float] = {}
        for neighbour, weight in self.graph.neighbours(node).items():
            if neighbour == node:
                continue
            label = self.community[neighbour]
            weights[label] = weights.get(label, 0.0) + weight
        return weights

    def move_node(self, node: NodeKey) -> bool:
        """Try to improve modularity by relocating ``node``; True if moved."""
        current = self.community[node]
        strength = self.graph.strength(node)
        neighbour_weights = self.neighbour_community_weights(node)

        # Detach the node.
        self.comm_strength[current] -= strength
        weight_to_current = neighbour_weights.get(current, 0.0)

        best_label = current
        best_gain = weight_to_current - (
            self.resolution * strength * self.comm_strength[current] / (2.0 * self.m)
        )
        for label, weight in sorted(
            neighbour_weights.items(), key=lambda item: item[0]
        ):
            if label == current:
                continue
            gain = weight - (
                self.resolution * strength * self.comm_strength[label] / (2.0 * self.m)
            )
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_label = label

        self.community[node] = best_label
        self.comm_strength[best_label] = (
            self.comm_strength.get(best_label, 0.0) + strength
        )
        return best_label != current

    def one_pass(self, rng: random.Random) -> bool:
        """One sweep over all nodes; True when anything moved."""
        nodes = list(self.graph.nodes())
        rng.shuffle(nodes)
        moved = False
        for node in nodes:
            if self.move_node(node):
                moved = True
        return moved


def _aggregate(graph: WeightedGraph, community: dict[NodeKey, int]) -> WeightedGraph:
    """Collapse communities into super-nodes (intra weight -> loops)."""
    meta = WeightedGraph()
    for node in graph.nodes():
        meta.add_node(community[node])
    for u, v, weight in graph.edges():
        meta.add_edge(community[u], community[v], weight)
    return meta


def louvain(
    graph: WeightedGraph, config: CommunityConfig | None = None
) -> LouvainResult:
    """Run Louvain on a weighted undirected graph.

    Returns the highest-modularity partition found along with every
    intermediate hierarchy level (coarse to fine ordering of the
    original paper: ``levels[0]`` is the first, finest aggregation).
    """
    cfg = config or CommunityConfig()
    rng = random.Random(cfg.seed)

    # node -> community in terms of the *original* nodes.
    mapping: dict[NodeKey, NodeKey] = {node: node for node in graph.nodes()}
    working = graph
    levels: list[Partition] = []

    for _ in range(cfg.max_passes):
        state = _LocalState(working, cfg.resolution)
        improved_any = False
        for _ in range(cfg.max_passes):
            if not state.one_pass(rng):
                break
            improved_any = True
        if not improved_any:
            break
        # Compact labels and record this level on the original nodes.
        labels = sorted(set(state.community.values()))
        compact = {label: index for index, label in enumerate(labels)}
        community = {node: compact[label] for node, label in state.community.items()}
        mapping = {node: community[mapping[node]] for node in mapping}
        levels.append(Partition.from_assignment(mapping))
        if len(labels) == len(state.community):
            break  # no aggregation happened; fixed point
        working = _aggregate(working, community)

    if not levels:
        # Graph was already optimal as singletons.
        levels.append(
            Partition.from_assignment(
                {node: index for index, node in enumerate(graph.nodes())}
            )
        )
        mapping = dict(levels[-1].assignment)

    final = levels[-1]
    return LouvainResult(
        partition=final,
        modularity=modularity(graph, final, cfg.resolution),
        levels=tuple(levels),
    )
