"""Newman modularity (paper eq. 2) over weighted undirected graphs.

Conventions match ``networkx.algorithms.community.modularity`` so the
test suite can use networkx as an oracle: *m* is the total edge weight
with self-loops counted once, node strength counts self-loops twice,
and

    Q = sum_c [ L_c / m  -  gamma * (deg_c / (2 m))^2 ]

where ``L_c`` is the intra-community edge weight and ``deg_c`` the total
strength of the community's nodes.
"""

from __future__ import annotations

from ..exceptions import CommunityError
from ..graphdb import WeightedGraph
from .partition import Partition


def modularity(
    graph: WeightedGraph, partition: Partition, resolution: float = 1.0
) -> float:
    """Modularity Q of ``partition`` on ``graph``.

    Every graph node must be assigned; extra assignments are ignored.
    Returns 0.0 for an empty (weightless) graph, matching the "no
    structure" reading.
    """
    # One pass over the adjacency, accumulating every sum in the same
    # order the naive strength()/edges() traversal did, so the returned
    # float is bit-identical to the historical implementation.  Large
    # graphs go through the numpy kernel, which replays these folds
    # with sequential np.add.at/accumulate — same float, faster.
    from ..perf import accel

    if accel.use_modularity(graph):
        return accel.modularity(graph, partition, resolution)
    assignment = partition.assignment
    position: dict = {}
    node_strength: list[float] = []
    for node in graph.nodes():
        position[node] = len(node_strength)
        neighbours = graph.neighbours(node)
        node_strength.append(sum(neighbours.values()) + neighbours.get(node, 0.0))
    total = sum(node_strength) / 2.0
    if total <= 0:
        return 0.0
    labels: list[int] = []
    strength: dict[int, float] = {}
    for node, node_deg in zip(graph.nodes(), node_strength):
        if node not in assignment:
            raise CommunityError(f"node {node!r} is not assigned to a community")
        label = assignment[node]
        labels.append(label)
        strength[label] = strength.get(label, 0.0) + node_deg
    # edges() yields each undirected edge once, at its lower-position
    # endpoint, in adjacency insertion order within a row.
    intra: dict[int, float] = {}
    for node in graph.nodes():
        u_pos = position[node]
        label = labels[u_pos]
        for neighbour, weight in graph.neighbours(node).items():
            if position[neighbour] < u_pos:
                continue
            if labels[position[neighbour]] == label:
                intra[label] = intra.get(label, 0.0) + weight
    two_m = 2.0 * total
    score = 0.0
    for label, deg in strength.items():
        score += intra.get(label, 0.0) / total - resolution * (deg / two_m) ** 2
    return score
