"""Newman modularity (paper eq. 2) over weighted undirected graphs.

Conventions match ``networkx.algorithms.community.modularity`` so the
test suite can use networkx as an oracle: *m* is the total edge weight
with self-loops counted once, node strength counts self-loops twice,
and

    Q = sum_c [ L_c / m  -  gamma * (deg_c / (2 m))^2 ]

where ``L_c`` is the intra-community edge weight and ``deg_c`` the total
strength of the community's nodes.
"""

from __future__ import annotations

from ..exceptions import CommunityError
from ..graphdb import WeightedGraph
from .partition import Partition


def modularity(
    graph: WeightedGraph, partition: Partition, resolution: float = 1.0
) -> float:
    """Modularity Q of ``partition`` on ``graph``.

    Every graph node must be assigned; extra assignments are ignored.
    Returns 0.0 for an empty (weightless) graph, matching the "no
    structure" reading.
    """
    total = graph.total_weight
    if total <= 0:
        return 0.0
    intra: dict[int, float] = {}
    strength: dict[int, float] = {}
    for node in graph.nodes():
        if node not in partition:
            raise CommunityError(f"node {node!r} is not assigned to a community")
        label = partition[node]
        strength[label] = strength.get(label, 0.0) + graph.strength(node)
    for u, v, weight in graph.edges():
        if partition[u] == partition[v]:
            label = partition[u]
            intra[label] = intra.get(label, 0.0) + weight
    two_m = 2.0 * total
    score = 0.0
    for label, deg in strength.items():
        score += intra.get(label, 0.0) / total - resolution * (deg / two_m) ** 2
    return score
