"""Figure 4 — G_Day community map."""

from repro.viz import render_community_map


def test_fig4_gday_map(benchmark, paper_expansion, output_dir):
    network = paper_expansion.network
    partition = paper_expansion.day.station_partition

    canvas = benchmark.pedantic(
        lambda: render_community_map(
            network, partition, "Community detection for G_Day"
        ),
        rounds=1,
        iterations=1,
    )

    path = canvas.save(output_dir / "fig4_gday_map.svg")
    print(f"\nFIG 4: G_Day community map -> {path}")
    print(f"  communities: {partition.n_communities} (paper: 7)")
    assert partition.n_communities >= 5
