"""Figure 3 — G_Basic community map (stations coloured by community)."""

from repro.viz import render_community_map


def test_fig3_gbasic_map(benchmark, paper_expansion, output_dir):
    network = paper_expansion.network
    partition = paper_expansion.basic.partition

    canvas = benchmark.pedantic(
        lambda: render_community_map(
            network, partition, "Community detection for G_Basic"
        ),
        rounds=1,
        iterations=1,
    )

    path = canvas.save(output_dir / "fig3_gbasic_map.svg")
    sizes = partition.sizes()
    print(f"\nFIG 3: G_Basic community map -> {path}")
    for label in partition.labels():
        print(f"  community {label}: {sizes[label]} stations")
    assert partition.n_communities >= 3
