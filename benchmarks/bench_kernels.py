"""Kernel bench — the rewritten hot kernels vs their references.

Runs the same head-to-head measurements ``repro bench`` persists into
``BENCH_pipeline.json``, at paper scale, printing a table instead of
appending to the trajectory: Louvain on the G_Hour multislice graph
and the pipeline's geo-query mix (pre-assignment ``within``, proximity
components, nearest-station reassignment), each against the verbatim
pre-optimisation snapshot in :mod:`repro.perf.baseline`.  Exactness is
asserted, not assumed — a kernel that drifts from its reference fails
the bench.
"""

from repro.perf.bench import _bench_louvain, _geo_kernel_bench
from repro.reporting import format_table


def test_kernels_vs_reference(paper_expansion, output_dir):
    result = paper_expansion
    rows = []
    for kernel in (
        _bench_louvain(result.network, scale=1, reps=2),
        _geo_kernel_bench(result.cleaned, result.network, scale=1, reps=2),
    ):
        assert kernel["exact"], f"{kernel['name']} drifted from its reference"
        rows.append(
            [
                kernel["name"],
                f"{kernel['baseline_s']:.3f}s",
                f"{kernel['optimised_s']:.3f}s",
                f"{kernel['speedup']:.2f}x",
                "bit-identical",
            ]
        )
    print()
    print(
        format_table(
            ["Kernel", "Reference", "Optimised", "Speedup", "Exactness"],
            rows,
            title="HOT KERNELS VS PRE-OPTIMISATION REFERENCES (paper scale)",
        )
    )
