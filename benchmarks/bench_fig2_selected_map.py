"""Figure 2 — the selected graph map.

Node size scales with self-contained trips, edge width with directed
weight, and only the top 1 % of edges are drawn — the paper's styling.
"""

from repro.viz import render_selected_map


def test_fig2_selected_map(benchmark, paper_expansion, output_dir):
    network = paper_expansion.network

    canvas = benchmark.pedantic(
        lambda: render_selected_map(network, edge_percentile=0.99),
        rounds=1,
        iterations=1,
    )

    path = canvas.save(output_dir / "fig2_selected_map.svg")
    flow = network.directed_flow()
    loops = sum(1 for u, v, _ in flow.edges() if u == v)
    print(f"\nFIG 2: selected graph map -> {path}")
    print(
        f"  stations drawn: {len(network.stations)} (paper: 238); "
        f"self-loop nodes: {loops} (paper: ~420 in candidate graph)"
    )
    assert canvas.to_string().count("<circle") == len(network.stations)
