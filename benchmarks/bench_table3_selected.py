"""Table III — the selected graph after Algorithm 1.

Regenerates the paper's Table III and benchmarks the ranking/selection
algorithm plus the nearest-station reassignment.
"""

from conftest import print_with_comparisons

from repro.core import build_selected_network, select_stations
from repro.reporting import experiment_table3


def test_table3_selection(benchmark, paper_expansion):
    candidates = paper_expansion.candidates

    def run():
        selection = select_stations(candidates)
        return build_selected_network(
            paper_expansion.cleaned, candidates, selection
        )

    network = benchmark.pedantic(run, rounds=1, iterations=1)

    output = experiment_table3(paper_expansion)
    print_with_comparisons(output)
    print(
        "selection rejections:",
        paper_expansion.selection.rejection_counts(),
        "| degree threshold:",
        paper_expansion.selection.degree_threshold,
    )
    stats = network.stats()
    # Paper shape: expansion roughly 1.5x the network, fixed stations
    # keep the large majority of trips.
    assert 97 <= stats.n_selected <= 219  # paper: 146
    assert stats.trips_from_fixed > 2 * stats.trips_from_selected
    assert stats.n_trips == 61_872
