"""Scaling bench — pipeline cost vs dataset size.

The paper's future work mentions "different graph optimisation
strategies ... if more computational resources are available to allow
for larger graphs"; this bench measures how the full pipeline scales
with trip volume on this implementation.
"""

import time

from repro.core import NetworkExpansionOptimiser
from repro.reporting import format_table
from repro.synth import GeneratorConfig, NoiseConfig, SyntheticMobyGenerator


def _config(scale: float) -> GeneratorConfig:
    return GeneratorConfig(
        seed=13,
        n_stations=max(20, int(92 * scale)),
        n_adhoc_spots=max(80, int(1150 * scale)),
        n_clean_rentals=max(2_000, int(61_872 * scale)),
        n_clean_locations=max(900, int(14_156 * scale)),
        noise=NoiseConfig(
            n_rentals_missing_id=20, n_rentals_dangling_id=20,
            n_locations_outside=5, n_locations_in_bay=5,
            n_locations_missing_coords=5, n_locations_unreferenced=5,
            rentals_per_bad_station=5,
        ),
    )


def _run_once(scale: float) -> dict[str, float]:
    timings: dict[str, float] = {}
    start = time.perf_counter()
    raw = SyntheticMobyGenerator(seed=13, config=_config(scale)).generate()
    timings["generate"] = time.perf_counter() - start

    optimiser = NetworkExpansionOptimiser(raw)
    for stage, fn in (
        ("clean", optimiser.clean),
        ("condense", optimiser.condense),
        ("select", optimiser.select),
        ("network", optimiser.build_network),
        ("louvain", optimiser.detect_basic),
    ):
        start = time.perf_counter()
        fn()
        timings[stage] = time.perf_counter() - start
    timings["total"] = sum(timings.values())
    return timings


def test_scaling_with_dataset_size(benchmark):
    scales = (0.1, 0.25, 0.5)
    results = {}

    def run_all():
        for scale in scales:
            results[scale] = _run_once(scale)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    stages = ["generate", "clean", "condense", "select", "network", "louvain", "total"]
    rows = [
        [f"{scale:.2f}x"] + [f"{results[scale][stage]:.2f}s" for stage in stages]
        for scale in scales
    ]
    print()
    print(
        format_table(
            ["Scale"] + stages,
            rows,
            title="SCALING: PIPELINE STAGE SECONDS VS DATASET SIZE",
        )
    )
    # Sanity: the half-scale run stays comfortably under two minutes.
    assert results[0.5]["total"] < 120.0
