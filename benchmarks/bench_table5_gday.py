"""Table V — communities in G_Day (multislice Louvain, 7 day slices)."""

from conftest import print_with_comparisons

from repro.community import detect_temporal_communities
from repro.config import PAPER_CONFIG
from repro.core import N_DAY_SLICES
from repro.reporting import experiment_table5


def test_table5_gday_communities(benchmark, paper_expansion):
    trips = paper_expansion.network.day_sliced_trips()

    result = benchmark.pedantic(
        lambda: detect_temporal_communities(
            trips, N_DAY_SLICES, PAPER_CONFIG.temporal
        ),
        rounds=1,
        iterations=1,
    )

    output = experiment_table5(paper_expansion)
    print_with_comparisons(output)
    # Paper: 7 communities; modularity above G_Basic's.
    assert 5 <= result.n_communities <= 10
    assert result.modularity > paper_expansion.basic.modularity
