"""Ablation A4 — multislice coupling sweep.

DESIGN.md calls out the inter-slice coupling ω as the one free
parameter of our temporal-graph interpretation.  This bench sweeps it
on G_Day and shows the regime structure: too weak and every slice
fragments; too strong and each station's chain of copies becomes its
own community; the calibrated default (0.12) sits in the valley that
matches the paper's 7 communities.
"""

from repro.community import detect_temporal_communities
from repro.config import PAPER_CONFIG, TemporalCommunityConfig
from repro.core import N_DAY_SLICES
from repro.reporting import format_table


def test_ablation_coupling_sweep(benchmark, paper_expansion):
    trips = paper_expansion.network.day_sliced_trips()

    def run_sweep():
        outcomes = []
        for coupling in (0.02, 0.12, 0.5, 2.0, 8.0):
            result = detect_temporal_communities(
                trips,
                N_DAY_SLICES,
                TemporalCommunityConfig(coupling=coupling),
            )
            outcomes.append(
                (coupling, result.n_communities, result.modularity)
            )
        return outcomes

    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["Coupling ω", "#communities (G_Day)", "Sliced modularity"],
            [[f"{c:.2f}", n, q] for c, n, q in outcomes],
            title="ABLATION A4: MULTISLICE COUPLING SWEEP (default ω = "
                  f"{PAPER_CONFIG.temporal.coupling}; paper: 7 communities)",
        )
    )
    by_coupling = {c: n for c, n, _ in outcomes}
    # The calibrated default sits in the valley; both extremes fragment.
    assert by_coupling[0.12] <= by_coupling[0.02]
    assert by_coupling[0.12] <= by_coupling[8.0]
