"""Figure 5 — daily travel patterns per G_Day community.

Prints every community's day-of-week trip shares (the figure's series),
renders the grouped bar chart, and checks the paper's qualitative
split: some communities peak at the weekend (leisure), others trough
there (commuting).
"""

from repro.core import DAY_NAMES, daily_profile, weekend_share
from repro.reporting import experiment_fig5
from repro.viz import render_profile_chart


def test_fig5_daily_patterns(benchmark, paper_expansion, output_dir):
    trips = paper_expansion.network.trips
    partition = paper_expansion.day.station_partition

    profiles = benchmark.pedantic(
        lambda: daily_profile(trips, partition), rounds=1, iterations=1
    )

    output = experiment_fig5(paper_expansion)
    print()
    print(output.text)
    canvas = render_profile_chart(
        profiles, list(DAY_NAMES), "Daily travel patterns per community (G_Day)"
    )
    path = canvas.save(output_dir / "fig5_daily_patterns.svg")
    print(f"  chart -> {path}")

    shares = {
        label: weekend_share(profile) for label, profile in profiles.items()
    }
    print("  weekend shares:", {k: round(v, 2) for k, v in sorted(shares.items())})
    # Paper: communities 1/3/7 peak on Saturday, 2/4/6 trough at weekends.
    assert max(shares.values()) > 0.4
    assert min(shares.values()) < 0.15
