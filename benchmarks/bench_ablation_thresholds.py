"""Ablation A2 — selection threshold sweeps.

The paper concedes its 100 m boundary and 250 m secondary distance are
pragmatic rather than empirical.  This bench sweeps the secondary
distance and the degree threshold and reports how many stations the
expansion admits under each setting.
"""

from repro.config import SelectionConfig
from repro.core import select_stations
from repro.reporting import format_table


def test_ablation_secondary_distance(benchmark, paper_expansion):
    candidates = paper_expansion.candidates

    def run_sweep():
        outcomes = []
        for secondary_m in (100.0, 175.0, 250.0, 400.0, 600.0):
            result = select_stations(
                candidates, SelectionConfig(secondary_distance_m=secondary_m)
            )
            outcomes.append((secondary_m, result.n_selected))
        return outcomes

    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["Secondary distance (m)", "#selected stations"],
            [[f"{d:.0f}", n] for d, n in outcomes],
            title="ABLATION A2a: SECONDARY-DISTANCE SWEEP (paper: 250 m -> 146)",
        )
    )
    counts = [n for _, n in outcomes]
    # Tighter spacing admits more stations, monotonically.
    assert counts == sorted(counts, reverse=True)


def test_ablation_degree_threshold(benchmark, paper_expansion):
    candidates = paper_expansion.candidates
    baseline = paper_expansion.selection.degree_threshold

    def run_sweep():
        outcomes = []
        for threshold in (0, baseline, 2 * baseline, 4 * baseline):
            result = select_stations(
                candidates, SelectionConfig(degree_threshold=threshold)
            )
            outcomes.append((threshold, result.n_selected))
        return outcomes

    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [[threshold, count] for threshold, count in outcomes]
    counts = [count for _, count in outcomes]

    print()
    print(
        format_table(
            ["Degree threshold", "#selected stations"],
            rows,
            title=(
                "ABLATION A2b: DEGREE-THRESHOLD SWEEP "
                f"(paper rule: min fixed-station degree = {baseline})"
            ),
        )
    )
    assert counts == sorted(counts, reverse=True)
