"""Pipeline cache — cold vs warm run of the staged runner.

Times the full paper-scale DAG against an empty cache directory and
again against the warm one, and checks the warm run recomputes nothing
(stage-execution counters, not wall clock, carry the assertion).
"""

import time

from repro import PipelineRunner
from repro.reporting import format_table
from repro.synth import generate_paper_dataset


def test_pipeline_cache_cold_vs_warm(benchmark, tmp_path_factory):
    raw = generate_paper_dataset(seed=7)
    cache_dir = tmp_path_factory.mktemp("stage-cache")

    cold_runner = PipelineRunner(raw, cache_dir=cache_dir)
    started = time.perf_counter()
    cold_result = cold_runner.run()
    cold_seconds = time.perf_counter() - started

    warm_runner = PipelineRunner(raw, cache_dir=cache_dir)
    warm_result = benchmark.pedantic(warm_runner.run, rounds=1, iterations=1)
    warm_seconds = benchmark.stats.stats.mean

    assert sum(cold_runner.executions.values()) == 7
    assert warm_runner.executions == {}, "warm run recomputed a stage"
    assert warm_result.selection.n_selected == cold_result.selection.n_selected
    assert warm_result.hour.modularity == cold_result.hour.modularity

    # A third run through a fresh process-independent runner also warm.
    third = PipelineRunner(raw, cache_dir=cache_dir)
    third.run()
    assert third.executions == {}

    print()
    print(
        format_table(
            ["Run", "Seconds", "Stages executed"],
            [
                ["cold", f"{cold_seconds:.2f}", 7],
                ["warm", f"{warm_seconds:.2f}", 0],
                ["speedup", f"{cold_seconds / max(warm_seconds, 1e-9):.0f}x", "-"],
            ],
            title="PIPELINE STAGE CACHE: COLD vs WARM",
        )
    )
