"""Table VI — communities in G_Hour (multislice Louvain, 24 hour slices)."""

from conftest import print_with_comparisons

from repro.community import detect_temporal_communities
from repro.config import PAPER_CONFIG
from repro.core import N_HOUR_SLICES
from repro.reporting import experiment_table6


def test_table6_ghour_communities(benchmark, paper_expansion):
    trips = paper_expansion.network.hour_sliced_trips()

    result = benchmark.pedantic(
        lambda: detect_temporal_communities(
            trips, N_HOUR_SLICES, PAPER_CONFIG.temporal
        ),
        rounds=1,
        iterations=1,
    )

    output = experiment_table6(paper_expansion)
    print_with_comparisons(output)
    # Paper: 10 communities; the highest modularity of the three.
    assert 8 <= result.n_communities <= 14
    assert result.modularity > paper_expansion.day.modularity
