"""Ablation A1 — linkage criterion (complete vs single vs average).

The paper uses complete linkage because cutting its dendrogram at 100 m
enforces the Cluster-Boundary rule by construction.  This bench runs
the condensation stage under all three criteria and reports cluster
counts and Rule-1 violations — single linkage chains and violates it.
"""

import numpy as np

from repro.cluster import cluster_locations, pairwise_haversine_matrix
from repro.config import ClusteringConfig
from repro.reporting import format_table


def _rule1_violations(clustering, points, boundary=100.0) -> int:
    violations = 0
    for cluster in clustering.clusters:
        if cluster.size < 2:
            continue
        member_points = [points[i] for i in cluster.member_location_ids]
        if float(np.max(pairwise_haversine_matrix(member_points))) > boundary + 1e-6:
            violations += 1
    return violations


def test_ablation_linkage_criteria(benchmark, paper_expansion):
    cleaned = paper_expansion.cleaned
    points = {r.location_id: r.point() for r in cleaned.locations()}
    stations = {r.location_id: r.point() for r in cleaned.stations()}

    rows = []
    results = {}
    for linkage in ("complete", "average", "single"):
        config = ClusteringConfig(linkage=linkage)
        if linkage == "complete":
            clustering = benchmark.pedantic(
                lambda: cluster_locations(points, stations, config),
                rounds=1,
                iterations=1,
            )
        else:
            clustering = cluster_locations(points, stations, config)
        results[linkage] = clustering
        rows.append(
            [
                linkage,
                clustering.n_clusters,
                max(c.size for c in clustering.clusters),
                _rule1_violations(clustering, points),
            ]
        )

    print()
    print(
        format_table(
            ["Linkage", "#clusters", "Largest cluster", "Rule-1 violations"],
            rows,
            title="ABLATION A1: LINKAGE CRITERION",
        )
    )
    # Complete linkage never violates Rule 1; single linkage chains.
    assert _rule1_violations(results["complete"], points) == 0
    assert results["single"].n_clusters <= results["average"].n_clusters
    assert results["average"].n_clusters <= results["complete"].n_clusters
