"""Ablation A3 — community-detection algorithm comparison.

The paper's stated future work: "compare the results of a range of
community detection algorithms, such as the Infomap algorithm and the
Label Propagation algorithm".  This bench runs Louvain, fast-greedy
CNM, label propagation and our map-equation optimiser on G_Basic and
reports communities, modularity and trip self-containment.
"""

from repro.community import (
    consensus_louvain,
    fast_greedy_with_score,
    infomap,
    label_propagation,
    louvain,
    modularity,
)
from repro.core import self_containment
from repro.reporting import format_table


def test_ablation_community_algorithms(benchmark, paper_expansion):
    g_basic = paper_expansion.network.g_basic()
    trips = paper_expansion.network.trips

    def run_all():
        outcomes = {}
        louvain_result = louvain(g_basic)
        outcomes["louvain"] = (louvain_result.partition, louvain_result.modularity)
        cnm_partition, cnm_score = fast_greedy_with_score(g_basic)
        outcomes["fast_greedy"] = (cnm_partition, cnm_score)
        lpa_partition = label_propagation(g_basic, seed=7)
        outcomes["label_propagation"] = (
            lpa_partition, modularity(g_basic, lpa_partition)
        )
        infomap_result = infomap(g_basic)
        outcomes["infomap"] = (
            infomap_result.partition,
            modularity(g_basic, infomap_result.partition),
        )
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (partition, score) in outcomes.items():
        rows.append(
            [
                name,
                partition.n_communities,
                score,
                self_containment(trips, partition),
            ]
        )
    print()
    print(
        format_table(
            ["Algorithm", "#communities", "Modularity", "Self-containment"],
            rows,
            title="ABLATION A3: COMMUNITY ALGORITHMS ON G_BASIC (paper future work)",
        )
    )
    # Louvain should be at least as good as LPA on modularity and find
    # a small community count comparable to the paper's 3.
    louvain_score = dict((row[0], row[2]) for row in rows)["louvain"]
    lpa_score = dict((row[0], row[2]) for row in rows)["label_propagation"]
    assert louvain_score >= lpa_score - 1e-9
    assert outcomes["louvain"][0].n_communities <= 8

    # Stability check: the paper's communities are not a lucky seed.
    consensus = consensus_louvain(g_basic, n_runs=6)
    print(
        f"consensus over 6 Louvain seeds: {consensus.n_communities} "
        f"communities, mean pairwise NMI {consensus.stability:.3f}"
    )
    assert consensus.stability > 0.5
