"""Storage subsystem — warm get/put per backend, solo and contended.

Times one :class:`~repro.store.Namespace` operation per benchmark
round against each backend kind (``memory``, ``dir``, ``sharded``)
with a stage-pickle-sized payload, so layout/atomic-publish overheads
stay visible as backends evolve.  The sharded layout should cost
within noise of the flat one — its win is directory fan-out at 100k+
entries, not per-operation speed.

The contended scenario replays the parallel pipeline's access shape —
several threads hammering warm ``get`` on one *bounded* namespace (the
path that historically serialised on a global lock and a per-hit
recency write) — so a de-contention regression shows up as this
benchmark collapsing toward the single-thread number times the thread
count.
"""

from __future__ import annotations

import itertools
import threading

import pytest

pytest.importorskip("pytest_benchmark")

from repro.store import Namespace, make_backend

#: A mid-sized stage pickle: big enough that I/O dominates Python
#: overhead, small enough for tight benchmark rounds.
PAYLOAD = bytes(range(256)) * 256  # 64 KiB

#: Enough warm entries that directory scans and shard fan-out are real.
N_ENTRIES = 64

_counter = itertools.count()


def make_namespace(kind: str, tmp_path) -> Namespace:
    root = None if kind == "memory" else tmp_path / kind
    return Namespace(make_backend(kind, root), suffix=".pkl")


def warm(namespace: Namespace) -> list[str]:
    keys = [f"{i:04x}{'ab' * 30}" for i in range(N_ENTRIES)]
    for key in keys:
        namespace.put(key, PAYLOAD)
    return keys


@pytest.mark.parametrize("kind", ["memory", "dir", "sharded"])
def test_store_warm_get(benchmark, kind, tmp_path):
    namespace = make_namespace(kind, tmp_path)
    keys = warm(namespace)
    cycle = itertools.cycle(keys)

    def get_one():
        assert namespace.get(next(cycle)) is not None

    benchmark(get_one)
    assert namespace.misses == 0


@pytest.mark.parametrize("kind", ["memory", "dir", "sharded"])
def test_store_warm_put(benchmark, kind, tmp_path):
    namespace = make_namespace(kind, tmp_path)
    keys = warm(namespace)
    cycle = itertools.cycle(keys)

    benchmark(lambda: namespace.put(next(cycle), PAYLOAD))
    assert namespace.entries() == N_ENTRIES


#: Contended-scenario shape: a small thread pool (the pipeline's
#: ``--jobs 4`` plus headroom) and enough operations per thread that
#: lock-acquisition costs dominate thread start/join overhead.
CONTENDED_THREADS = 8
CONTENDED_OPS_PER_THREAD = 200


@pytest.mark.parametrize("kind", ["memory", "dir", "sharded"])
def test_store_contended_warm_get(benchmark, kind, tmp_path):
    """Warm gets from CONTENDED_THREADS threads on a bounded namespace.

    Bounded, with a debounce window, exactly like the pipeline's stage
    cache: each hit takes the peek + policy-stamp read path this PR
    de-contends.  The benchmark value is the wall time of the whole
    storm; correctness (every get a hit) is asserted after.
    """
    root = None if kind == "memory" else tmp_path / kind
    namespace = Namespace(
        make_backend(kind, root),
        suffix=".pkl",
        max_entries=N_ENTRIES * 2,
        touch_window_s=30.0,
    )
    keys = warm(namespace)
    failures: list[str] = []

    def hammer(worker: int) -> None:
        for i in range(CONTENDED_OPS_PER_THREAD):
            key = keys[(worker * 7 + i) % len(keys)]
            if namespace.get(key) is None:
                failures.append(key)

    def storm() -> None:
        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(CONTENDED_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    benchmark.pedantic(storm, rounds=3, iterations=1, warmup_rounds=1)
    assert not failures
    assert namespace.misses == 0
    assert namespace.entries() == N_ENTRIES
