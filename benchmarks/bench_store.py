"""Storage subsystem — warm get/put per backend.

Times one :class:`~repro.store.Namespace` operation per benchmark
round against each backend kind (``memory``, ``dir``, ``sharded``)
with a stage-pickle-sized payload, so layout/atomic-publish overheads
stay visible as backends evolve.  The sharded layout should cost
within noise of the flat one — its win is directory fan-out at 100k+
entries, not per-operation speed.
"""

from __future__ import annotations

import itertools

import pytest

from repro.store import Namespace, make_backend

#: A mid-sized stage pickle: big enough that I/O dominates Python
#: overhead, small enough for tight benchmark rounds.
PAYLOAD = bytes(range(256)) * 256  # 64 KiB

#: Enough warm entries that directory scans and shard fan-out are real.
N_ENTRIES = 64

_counter = itertools.count()


def make_namespace(kind: str, tmp_path) -> Namespace:
    root = None if kind == "memory" else tmp_path / kind
    return Namespace(make_backend(kind, root), suffix=".pkl")


def warm(namespace: Namespace) -> list[str]:
    keys = [f"{i:04x}{'ab' * 30}" for i in range(N_ENTRIES)]
    for key in keys:
        namespace.put(key, PAYLOAD)
    return keys


@pytest.mark.parametrize("kind", ["memory", "dir", "sharded"])
def test_store_warm_get(benchmark, kind, tmp_path):
    namespace = make_namespace(kind, tmp_path)
    keys = warm(namespace)
    cycle = itertools.cycle(keys)

    def get_one():
        assert namespace.get(next(cycle)) is not None

    benchmark(get_one)
    assert namespace.misses == 0


@pytest.mark.parametrize("kind", ["memory", "dir", "sharded"])
def test_store_warm_put(benchmark, kind, tmp_path):
    namespace = make_namespace(kind, tmp_path)
    keys = warm(namespace)
    cycle = itertools.cycle(keys)

    benchmark(lambda: namespace.put(next(cycle), PAYLOAD))
    assert namespace.entries() == N_ENTRIES
