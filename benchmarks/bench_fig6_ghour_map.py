"""Figure 6 — G_Hour community map."""

from repro.viz import render_community_map


def test_fig6_ghour_map(benchmark, paper_expansion, output_dir):
    network = paper_expansion.network
    partition = paper_expansion.hour.station_partition

    canvas = benchmark.pedantic(
        lambda: render_community_map(
            network, partition, "Community detection for G_Hour"
        ),
        rounds=1,
        iterations=1,
    )

    path = canvas.save(output_dir / "fig6_ghour_map.svg")
    print(f"\nFIG 6: G_Hour community map -> {path}")
    print(f"  communities: {partition.n_communities} (paper: 10)")
    assert partition.n_communities >= 8
