"""Figure 7 — hourly travel patterns per G_Hour community.

Prints every community's hour-of-day trip shares, renders the chart,
and checks the paper's qualitative split: commute-peaked communities
(7-9 am and ~5 pm) versus midday-peaked leisure communities.
"""

from repro.core import commute_peak_share, hourly_profile, midday_share
from repro.reporting import experiment_fig7
from repro.viz import render_profile_chart


def test_fig7_hourly_patterns(benchmark, paper_expansion, output_dir):
    trips = paper_expansion.network.trips
    partition = paper_expansion.hour.station_partition

    profiles = benchmark.pedantic(
        lambda: hourly_profile(trips, partition), rounds=1, iterations=1
    )

    output = experiment_fig7(paper_expansion)
    print()
    print(output.text)
    canvas = render_profile_chart(
        profiles,
        [f"{hour:02d}" for hour in range(24)],
        "Hourly travel patterns per community (G_Hour)",
    )
    path = canvas.save(output_dir / "fig7_hourly_patterns.svg")
    print(f"  chart -> {path}")

    commute = {
        label: commute_peak_share(profile)
        for label, profile in profiles.items()
    }
    midday = {
        label: midday_share(profile) for label, profile in profiles.items()
    }
    print("  commute-peak shares:", {k: round(v, 2) for k, v in sorted(commute.items())})
    print("  midday shares:", {k: round(v, 2) for k, v in sorted(midday.items())})
    assert max(commute.values()) > 0.5
    assert max(midday.values()) > 0.3
