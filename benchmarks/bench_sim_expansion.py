"""Extension experiment — simulated service rate before/after expansion.

The paper's operational claim is that the expansion relieves
bottlenecks and that community-driven rebalancing improves
redistribution.  This bench replays the full 21-month demand against
(a) the original 92 stations, (b) the expanded network with the *same*
95-bike fleet, (c) the expanded network with Friday-night rebalancing,
and (d) the expanded network with the fleet scaled to the new station
count.

Finding worth reporting: with a fixed fleet, expansion *dilutes* bike
availability (the same bikes spread over 2.8x the stations), so the
service rate drops — station expansion only pays off alongside fleet
growth, which is exactly the operational caveat a planner needs.
"""

from repro.analysis import plan_weekend_rebalancing
from repro.reporting import format_table
from repro.sim import FleetSimulator, compare_networks, requests_from_rentals


def test_sim_expansion_service_rate(benchmark, paper_expansion):
    plan = plan_weekend_rebalancing(
        paper_expansion.network,
        paper_expansion.day.station_partition,
        fleet_size=95,
    )

    def run_all():
        comparisons = compare_networks(
            paper_expansion, n_bikes=95, walk_radius_m=300.0,
            rebalancing_plan=plan,
        )
        # Scenario (d): fleet grown proportionally with the network.
        network = paper_expansion.network
        points = {
            sid: station.point for sid, station in network.stations.items()
        }
        scaled_bikes = round(95 * len(points) / len(network.fixed_station_ids))
        requests = requests_from_rentals(
            paper_expansion.cleaned.rentals(), network.location_to_station
        )
        weights: dict[int, float] = {}
        for request in requests:
            weights[request.origin] = weights.get(request.origin, 0.0) + 1.0
        simulator = FleetSimulator(points, scaled_bikes, walk_radius_m=300.0)
        scaled = simulator.run(requests, simulator.initial_bikes(weights))
        return comparisons, scaled, scaled_bikes

    comparisons, scaled, scaled_bikes = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    rows = []
    for comparison in comparisons:
        outcome = comparison.result
        rows.append(
            [
                comparison.name + " (95 bikes)",
                comparison.n_stations,
                outcome.n_requests,
                f"{outcome.service_rate:.1%}",
                f"{outcome.walk_rate:.1%}",
                outcome.bikes_moved_by_rebalancing,
            ]
        )
    rows.append(
        [
            f"expanded ({scaled_bikes} bikes)",
            comparisons[1].n_stations,
            scaled.n_requests,
            f"{scaled.service_rate:.1%}",
            f"{scaled.walk_rate:.1%}",
            0,
        ]
    )
    print()
    print(
        format_table(
            ["Scenario", "Stations", "Requests", "Service rate", "Walk rate",
             "Rebalanced"],
            rows,
            title="SIMULATED SERVICE RATE: EXPANSION vs FLEET SIZE",
        )
    )
    by_name = {c.name: c.result for c in comparisons}
    # Conservation in every scenario.
    for outcome in list(by_name.values()) + [scaled]:
        assert outcome.served + outcome.unserved == outcome.n_requests
    # The documented finding: fixed-fleet expansion dilutes availability...
    assert by_name["expanded"].service_rate < by_name["original"].service_rate
    # ...while scaling the fleet with the network recovers (and beats) it.
    assert scaled.service_rate > by_name["original"].service_rate - 0.02
    # Rebalancing never hurts the expanded network.
    assert (
        by_name["expanded+rebalancing"].service_rate
        >= by_name["expanded"].service_rate - 0.02
    )
