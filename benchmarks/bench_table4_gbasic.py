"""Table IV — communities in G_Basic (Louvain, no temporal features)."""

from conftest import print_with_comparisons

from repro.community import louvain, partition_significance
from repro.core import self_containment
from repro.reporting import experiment_table4


def test_table4_gbasic_communities(benchmark, paper_expansion):
    g_basic = paper_expansion.network.g_basic()

    result = benchmark.pedantic(
        lambda: louvain(g_basic), rounds=1, iterations=1
    )

    output = experiment_table4(paper_expansion)
    print_with_comparisons(output)
    containment = self_containment(
        paper_expansion.network.trips, result.partition
    )
    # Paper: 3 communities, ~74 % of trips self-contained.
    assert 3 <= result.n_communities <= 5
    assert 0.64 <= containment <= 0.84
    assert result.modularity > 0.2

    # Signorelli & Cutillo-style validation ([33]): the partition must
    # beat degree-preserving null graphs.
    significance = partition_significance(
        g_basic, result.partition, n_samples=6
    )
    print(
        f"null-model check: Q={significance.observed:.3f} vs null "
        f"{significance.null_mean:.3f}±{significance.null_std:.3f} "
        f"(z={significance.z_score:.1f})"
    )
    assert significance.observed > significance.null_mean
