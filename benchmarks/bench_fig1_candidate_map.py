"""Figure 1 — the candidate graph map (purple nodes, yellow edges)."""

from repro.viz import render_candidate_map


def test_fig1_candidate_map(benchmark, paper_expansion, output_dir):
    candidates = paper_expansion.candidates
    points = {
        ("station", sid): point
        for sid, point in candidates.station_points.items()
    }
    points.update(
        (("cluster", cid), point)
        for cid, point in candidates.cluster_centroids.items()
    )

    canvas = benchmark.pedantic(
        lambda: render_candidate_map(points, candidates.flow),
        rounds=1,
        iterations=1,
    )

    path = canvas.save(output_dir / "fig1_candidate_map.svg")
    print(f"\nFIG 1: candidate graph map -> {path}")
    print(
        f"  nodes drawn: {len(points)} (paper: 1,172); "
        f"directed flow edges: {candidates.flow.edge_count} (paper: 16,042)"
    )
    assert canvas.to_string().count("<circle") == len(points)
