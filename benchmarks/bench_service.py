"""Service front-end — warm-cache request throughput and dedup speedup.

Two measurements over a live ``repro serve`` socket (ephemeral port,
in-process service):

* **warm requests/sec** — ``POST /v1/runs`` for a scenario whose
  envelope is already in the results store: the request never touches
  the pipeline, so this is the serving overhead (HTTP + store lookup);
* **warm byte path** — keep-alive ``GET /v1/results/<fp>`` (full
  envelope, headline view, conditional 304): pre-rendered bytes out of
  the :class:`~repro.service.bytescache.BytesLRU`, no JSON touched —
  the 50x-over-baseline serving gate;
* **dedup speedup** — N concurrent identical *cold* requests share one
  pipeline execution; the batch finishes in roughly the time of one
  run instead of N, and the service counters prove a single execution;
* **metrics overhead** — the warm request timed again on a second
  server built with ``metrics=False`` (null registry): instrumentation
  must stay within noise of the uninstrumented path;
* **multi-worker scaling** — on a box with 2+ CPUs, the same warm GET
  storm against ``repro serve --workers 2`` subprocess fleets must
  out-serve ``--workers 1`` by ≥1.7x (skipped, and recorded as
  skipped, on single-CPU machines).

The measurements are appended to ``BENCH_pipeline.json`` as a
``service``-labelled trajectory entry (same provenance block as
``repro bench``), so the serving path has a perf history per revision
instead of numbers that evaporate with the terminal.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.perf.bench import append_entry, entry_header
from repro.reporting import format_table
from repro.service import ExpansionService, make_server
from repro.synth import generate_paper_dataset

from conftest import OUTPUT_DIR

REPO_ROOT = Path(__file__).resolve().parent.parent

N_WARM_REQUESTS = 25
N_CONCURRENT_CLIENTS = 6

#: Keep-alive rounds for the byte-path measurements (cheap requests;
#: more rounds keep the mean out of the noise).
N_BYTE_REQUESTS = 150

#: The acceptance floor for warm byte serving: 50x the 4.4 req/s the
#: parse-per-request warm path measured before the byte cache.
MIN_WARM_BYTES_REQUESTS_PER_S = 220.0


def _measure_keepalive_gets(
    url: str, path: str, rounds: int, headers: dict | None = None,
    expect_status: int = 200, batches: int = 3,
) -> float:
    """Best-of-``batches`` mean seconds per warm GET, one connection.

    The body is drained into a reusable buffer (the multi-MB envelope
    would otherwise spend the measurement allocating client-side), and
    the fastest batch is taken — the server's capability, not the
    bench process's scheduling luck, is what is being gated.
    """
    host, _, port = url.removeprefix("http://").partition(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=1200)
    sink = bytearray(1 << 20)
    try:
        def one() -> None:
            conn.request("GET", path, headers=headers or {})
            response = conn.getresponse()
            while response.readinto(sink):
                pass
            assert response.status == expect_status, response.status

        one()  # unmeasured: connection setup and cache fill
        best = float("inf")
        for _ in range(batches):
            started = time.perf_counter()
            for _ in range(rounds):
                one()
            best = min(best, (time.perf_counter() - started) / rounds)
        return best
    finally:
        conn.close()


def _measure_fleet_throughput(
    store_dir: Path, dataset_doc: dict, workers: int, clients: int,
    seconds: float,
) -> float:
    """Aggregate warm GET req/s of a ``--workers N`` subprocess fleet."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--store-dir", str(store_dir), "--workers", str(workers),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    try:
        base = proc.stdout.readline().strip().rsplit(" ", 1)[-1]
        assert base.startswith("http://"), base
        host, _, port = base.removeprefix("http://").partition(":")
        address = (host, int(port))
        deadline = time.monotonic() + 60
        while True:  # wait for a worker to accept
            try:
                http.client.HTTPConnection(*address, timeout=5).connect()
                break
            except OSError:
                assert time.monotonic() < deadline, "fleet never came up"
                time.sleep(0.05)
        body = json.dumps(dataset_doc).encode()
        conn = http.client.HTTPConnection(*address, timeout=1200)
        conn.request("PUT", "/v1/datasets/paper", body=body,
                     headers={"Content-Type": "application/json"})
        assert conn.getresponse().status in (200, 201)
        conn.request(
            "POST", "/v1/runs",
            body=json.dumps(
                {"dataset": {"kind": "named", "name": "paper"}}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        fingerprint = json.loads(response.read())["fingerprint"]
        conn.close()
        path = f"/v1/results/{fingerprint}?fields=headline"
        counts = [0] * clients
        stop_at = time.monotonic() + seconds

        def storm(slot: int) -> None:
            client = http.client.HTTPConnection(*address, timeout=1200)
            try:
                while time.monotonic() < stop_at:
                    client.request("GET", path)
                    reply = client.getresponse()
                    reply.read()
                    if reply.status == 200:
                        counts[slot] += 1
            finally:
                client.close()

        threads = [
            threading.Thread(target=storm, args=(slot,))
            for slot in range(clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        return sum(counts) / max(elapsed, 1e-9)
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=30)


def _post_run(url: str, overrides: dict) -> dict:
    body = json.dumps(
        {"dataset": {"kind": "named", "name": "paper"}, "overrides": overrides}
    ).encode()
    request = urllib.request.Request(
        url + "/v1/runs", data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=1200) as response:
        return json.loads(response.read())


def _measure_warm(url: str, rounds: int) -> float:
    started = time.perf_counter()
    for _ in range(rounds):
        _post_run(url, {})
    return (time.perf_counter() - started) / rounds


def test_service_throughput_and_dedup(benchmark):
    dataset = generate_paper_dataset(seed=7)
    service = ExpansionService(
        cache_dir=OUTPUT_DIR / ".cache", max_workers=N_CONCURRENT_CLIENTS
    )
    service.register_dataset("paper", dataset)
    server = make_server(service, port=0).start_background()
    try:
        url = server.url

        # ------------------------------------------------------------------
        # Warm-cache requests/sec: first request computes (or loads the
        # shared bench stage cache); the rest hit the results store.
        # ------------------------------------------------------------------
        envelope = _post_run(url, {})
        assert envelope["outputs"]["run"]["headline"]["table3_selected"]

        warm = benchmark.pedantic(
            lambda: _post_run(url, {}), rounds=N_WARM_REQUESTS, iterations=1
        )
        warm_seconds = benchmark.stats.stats.mean
        requests_per_second = 1.0 / max(warm_seconds, 1e-9)
        assert warm["fingerprint"] == envelope["fingerprint"]
        executions_after_warm = service.pipeline_executions

        # ------------------------------------------------------------------
        # Metrics overhead: the same warm request against a second
        # server whose service runs the null registry (metrics=False).
        # Both sides are timed by the same manual loop so the ratio is
        # apples-to-apples; the instrumented path has to stay within
        # noise of the uninstrumented one.
        # ------------------------------------------------------------------
        metrics_on_seconds = _measure_warm(url, N_WARM_REQUESTS)
        plain_service = ExpansionService(
            cache_dir=OUTPUT_DIR / ".cache",
            max_workers=N_CONCURRENT_CLIENTS,
            metrics=False,
        )
        plain_service.register_dataset("paper", dataset)
        plain_server = make_server(plain_service, port=0).start_background()
        try:
            _post_run(plain_server.url, {})  # warm its results store
            metrics_off_seconds = _measure_warm(
                plain_server.url, N_WARM_REQUESTS
            )
        finally:
            plain_server.stop()
            plain_service.close()
        metrics_ratio = metrics_on_seconds / max(metrics_off_seconds, 1e-9)
        assert metrics_ratio < 2.0, (
            f"metrics-enabled serving is {metrics_ratio:.2f}x the "
            "null-registry path — instrumentation left the noise band"
        )

        # ------------------------------------------------------------------
        # Degraded (read-only) mode: with the store-write circuit
        # breaker open the service sheds new work with 503 +
        # Retry-After but keeps serving warm envelopes — measure what
        # read-only mode still delivers.
        # ------------------------------------------------------------------
        service.breaker.trip()
        try:
            _post_run(url, {})
            raise AssertionError("open breaker accepted a POST /v1/runs")
        except urllib.error.HTTPError as error:
            assert error.code == 503, f"expected 503, got {error.code}"
            assert int(error.headers["Retry-After"]) >= 1
            error.read()
        fingerprint = envelope["fingerprint"]
        started = time.perf_counter()
        for _ in range(N_WARM_REQUESTS):
            with urllib.request.urlopen(
                f"{url}/v1/results/{fingerprint}", timeout=1200
            ) as response:
                response.read()
        degraded_get_seconds = (
            time.perf_counter() - started
        ) / N_WARM_REQUESTS
        degraded_requests_per_s = 1.0 / max(degraded_get_seconds, 1e-9)
        service.breaker.reset()

        # ------------------------------------------------------------------
        # Warm byte path: keep-alive GETs served straight from the
        # BytesLRU — the full multi-MB envelope, the headline view, and
        # a conditional GET collapsing to an empty 304.  The full-body
        # rate is the acceptance gate: ≥50x the 4.4 req/s the old
        # parse-per-request warm path measured.
        # ------------------------------------------------------------------
        fingerprint = envelope["fingerprint"]
        full_path = f"/v1/results/{fingerprint}"
        warm_bytes_seconds = _measure_keepalive_gets(
            url, full_path, N_BYTE_REQUESTS
        )
        warm_bytes_requests_per_s = 1.0 / max(warm_bytes_seconds, 1e-9)
        headline_seconds = _measure_keepalive_gets(
            url, full_path + "?fields=headline", N_BYTE_REQUESTS
        )
        headline_requests_per_s = 1.0 / max(headline_seconds, 1e-9)
        conditional_seconds = _measure_keepalive_gets(
            url, full_path, N_BYTE_REQUESTS,
            headers={"If-None-Match": f'"{fingerprint}"'},
            expect_status=304,
        )
        conditional_requests_per_s = 1.0 / max(conditional_seconds, 1e-9)
        assert warm_bytes_requests_per_s >= MIN_WARM_BYTES_REQUESTS_PER_S, (
            f"warm byte path serves {warm_bytes_requests_per_s:.0f} req/s, "
            f"under the {MIN_WARM_BYTES_REQUESTS_PER_S:.0f} floor "
            "(50x the pre-cache baseline)"
        )
        bytes_cache_stats = service.results.bytes_cache.stats()

        # ------------------------------------------------------------------
        # Multi-worker scaling: --workers 2 must beat --workers 1 by
        # ≥1.7x on aggregate warm GET throughput — only meaningful with
        # at least two CPUs to put the second process on.
        # ------------------------------------------------------------------
        cpus = os.cpu_count() or 1
        if cpus >= 2:
            dataset_doc = dataset.to_dict()
            single_rate = _measure_fleet_throughput(
                OUTPUT_DIR / "fleet-1", dataset_doc, workers=1,
                clients=4, seconds=5.0,
            )
            fleet_rate = _measure_fleet_throughput(
                OUTPUT_DIR / "fleet-2", dataset_doc, workers=2,
                clients=4, seconds=5.0,
            )
            worker_scaling = fleet_rate / max(single_rate, 1e-9)
            assert worker_scaling >= 1.7, (
                f"--workers 2 scaled only {worker_scaling:.2f}x over one "
                f"worker on {cpus} CPUs"
            )
            workers_block: dict = {
                "cpus": cpus,
                "single_worker_requests_per_s": round(single_rate, 1),
                "two_worker_requests_per_s": round(fleet_rate, 1),
                "scaling": round(worker_scaling, 2),
            }
        else:
            worker_scaling = None
            workers_block = {
                "cpus": cpus,
                "skipped": "needs >= 2 CPUs to measure process scaling",
            }

        # ------------------------------------------------------------------
        # Dedup speedup: a changed community seed invalidates the three
        # Louvain stages (the expensive cone), so each batch is real
        # work.  Session-unique seeds keep the runs genuinely cold even
        # though the bench stage cache persists on disk.
        # ------------------------------------------------------------------
        seed_base = int(time.time()) % 1_000_000_000
        started = time.perf_counter()
        _post_run(url, {"community.seed": seed_base})
        single_cold_seconds = time.perf_counter() - started

        responses: list[dict] = []
        barrier = threading.Barrier(N_CONCURRENT_CLIENTS)

        def client() -> None:
            barrier.wait()
            responses.append(_post_run(url, {"community.seed": seed_base + 1}))

        threads = [
            threading.Thread(target=client)
            for _ in range(N_CONCURRENT_CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        concurrent_seconds = time.perf_counter() - started

        assert len({response["fingerprint"] for response in responses}) == 1
        batch_executions = service.pipeline_executions - executions_after_warm
        assert batch_executions == 2, "dedup failed: each batch should run once"
        speedup = (
            N_CONCURRENT_CLIENTS * single_cold_seconds
            / max(concurrent_seconds, 1e-9)
        )

        print()
        print(
            format_table(
                ["Measure", "Value"],
                [
                    ["warm request latency", f"{warm_seconds * 1000:.1f} ms"],
                    ["warm requests/sec", f"{requests_per_second:.1f}"],
                    [
                        "warm req/s, metrics on",
                        f"{1.0 / max(metrics_on_seconds, 1e-9):.1f}",
                    ],
                    [
                        "warm req/s, metrics off",
                        f"{1.0 / max(metrics_off_seconds, 1e-9):.1f}",
                    ],
                    ["metrics overhead ratio", f"{metrics_ratio:.3f}x"],
                    [
                        "degraded (breaker open) warm GET req/s",
                        f"{degraded_requests_per_s:.1f}",
                    ],
                    [
                        "warm bytes GET req/s (full envelope)",
                        f"{warm_bytes_requests_per_s:.1f}",
                    ],
                    [
                        "warm bytes GET req/s (headline view)",
                        f"{headline_requests_per_s:.1f}",
                    ],
                    [
                        "conditional GET 304 req/s",
                        f"{conditional_requests_per_s:.1f}",
                    ],
                    [
                        "--workers 2 scaling",
                        (
                            f"{worker_scaling:.2f}x"
                            if worker_scaling is not None
                            else f"skipped ({cpus} cpu)"
                        ),
                    ],
                    ["cold run (1 client)", f"{single_cold_seconds:.2f} s"],
                    [
                        f"cold batch ({N_CONCURRENT_CLIENTS} identical clients)",
                        f"{concurrent_seconds:.2f} s",
                    ],
                    ["pipeline executions in batch", batch_executions - 1],
                    ["dedup speedup vs no-dedup", f"{speedup:.1f}x"],
                ],
                title="SERVICE FRONT-END: WARM THROUGHPUT + REQUEST DEDUP",
            )
        )

        # Fold the serving-path numbers into the same persisted
        # trajectory the pipeline benches append to.
        entry = entry_header("service", anchor=REPO_ROOT)
        entry["service"] = {
            "warm_requests": N_WARM_REQUESTS,
            "warm_latency_ms": round(warm_seconds * 1000, 2),
            "warm_requests_per_s": round(requests_per_second, 1),
            "metrics_on_requests_per_s": round(
                1.0 / max(metrics_on_seconds, 1e-9), 1
            ),
            "metrics_off_requests_per_s": round(
                1.0 / max(metrics_off_seconds, 1e-9), 1
            ),
            "metrics_overhead_ratio": round(metrics_ratio, 3),
            "degraded": {
                "writes_shed_with": 503,
                "warm_get_latency_ms": round(degraded_get_seconds * 1000, 2),
                "warm_get_requests_per_s": round(degraded_requests_per_s, 1),
            },
            "cold_single_s": round(single_cold_seconds, 3),
            "cold_batch_clients": N_CONCURRENT_CLIENTS,
            "cold_batch_s": round(concurrent_seconds, 3),
            "dedup_speedup": round(speedup, 2),
            "warm_bytes": {
                "rounds": N_BYTE_REQUESTS,
                "warm_bytes_requests_per_s": round(
                    warm_bytes_requests_per_s, 1
                ),
                "headline_requests_per_s": round(headline_requests_per_s, 1),
                "conditional_304_requests_per_s": round(
                    conditional_requests_per_s, 1
                ),
                "cache": {
                    key: bytes_cache_stats[key]
                    for key in ("entries", "bytes", "hits", "misses")
                },
            },
            "workers": workers_block,
        }
        path = append_entry(entry, REPO_ROOT / "BENCH_pipeline.json")
        print(f"service entry appended to {path}")
    finally:
        server.stop()
        service.close()
