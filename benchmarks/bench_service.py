"""Service front-end — warm-cache request throughput and dedup speedup.

Two measurements over a live ``repro serve`` socket (ephemeral port,
in-process service):

* **warm requests/sec** — ``POST /v1/runs`` for a scenario whose
  envelope is already in the results store: the request never touches
  the pipeline, so this is the serving overhead (HTTP + store lookup);
* **dedup speedup** — N concurrent identical *cold* requests share one
  pipeline execution; the batch finishes in roughly the time of one
  run instead of N, and the service counters prove a single execution;
* **metrics overhead** — the warm request timed again on a second
  server built with ``metrics=False`` (null registry): instrumentation
  must stay within noise of the uninstrumented path.

The measurements are appended to ``BENCH_pipeline.json`` as a
``service``-labelled trajectory entry (same provenance block as
``repro bench``), so the serving path has a perf history per revision
instead of numbers that evaporate with the terminal.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.perf.bench import append_entry, entry_header
from repro.reporting import format_table
from repro.service import ExpansionService, make_server
from repro.synth import generate_paper_dataset

from conftest import OUTPUT_DIR

REPO_ROOT = Path(__file__).resolve().parent.parent

N_WARM_REQUESTS = 25
N_CONCURRENT_CLIENTS = 6


def _post_run(url: str, overrides: dict) -> dict:
    body = json.dumps(
        {"dataset": {"kind": "named", "name": "paper"}, "overrides": overrides}
    ).encode()
    request = urllib.request.Request(
        url + "/v1/runs", data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=1200) as response:
        return json.loads(response.read())


def _measure_warm(url: str, rounds: int) -> float:
    started = time.perf_counter()
    for _ in range(rounds):
        _post_run(url, {})
    return (time.perf_counter() - started) / rounds


def test_service_throughput_and_dedup(benchmark):
    dataset = generate_paper_dataset(seed=7)
    service = ExpansionService(
        cache_dir=OUTPUT_DIR / ".cache", max_workers=N_CONCURRENT_CLIENTS
    )
    service.register_dataset("paper", dataset)
    server = make_server(service, port=0).start_background()
    try:
        url = server.url

        # ------------------------------------------------------------------
        # Warm-cache requests/sec: first request computes (or loads the
        # shared bench stage cache); the rest hit the results store.
        # ------------------------------------------------------------------
        envelope = _post_run(url, {})
        assert envelope["outputs"]["run"]["headline"]["table3_selected"]

        warm = benchmark.pedantic(
            lambda: _post_run(url, {}), rounds=N_WARM_REQUESTS, iterations=1
        )
        warm_seconds = benchmark.stats.stats.mean
        requests_per_second = 1.0 / max(warm_seconds, 1e-9)
        assert warm["fingerprint"] == envelope["fingerprint"]
        executions_after_warm = service.pipeline_executions

        # ------------------------------------------------------------------
        # Metrics overhead: the same warm request against a second
        # server whose service runs the null registry (metrics=False).
        # Both sides are timed by the same manual loop so the ratio is
        # apples-to-apples; the instrumented path has to stay within
        # noise of the uninstrumented one.
        # ------------------------------------------------------------------
        metrics_on_seconds = _measure_warm(url, N_WARM_REQUESTS)
        plain_service = ExpansionService(
            cache_dir=OUTPUT_DIR / ".cache",
            max_workers=N_CONCURRENT_CLIENTS,
            metrics=False,
        )
        plain_service.register_dataset("paper", dataset)
        plain_server = make_server(plain_service, port=0).start_background()
        try:
            _post_run(plain_server.url, {})  # warm its results store
            metrics_off_seconds = _measure_warm(
                plain_server.url, N_WARM_REQUESTS
            )
        finally:
            plain_server.stop()
            plain_service.close()
        metrics_ratio = metrics_on_seconds / max(metrics_off_seconds, 1e-9)
        assert metrics_ratio < 2.0, (
            f"metrics-enabled serving is {metrics_ratio:.2f}x the "
            "null-registry path — instrumentation left the noise band"
        )

        # ------------------------------------------------------------------
        # Degraded (read-only) mode: with the store-write circuit
        # breaker open the service sheds new work with 503 +
        # Retry-After but keeps serving warm envelopes — measure what
        # read-only mode still delivers.
        # ------------------------------------------------------------------
        service.breaker.trip()
        try:
            _post_run(url, {})
            raise AssertionError("open breaker accepted a POST /v1/runs")
        except urllib.error.HTTPError as error:
            assert error.code == 503, f"expected 503, got {error.code}"
            assert int(error.headers["Retry-After"]) >= 1
            error.read()
        fingerprint = envelope["fingerprint"]
        started = time.perf_counter()
        for _ in range(N_WARM_REQUESTS):
            with urllib.request.urlopen(
                f"{url}/v1/results/{fingerprint}", timeout=1200
            ) as response:
                response.read()
        degraded_get_seconds = (
            time.perf_counter() - started
        ) / N_WARM_REQUESTS
        degraded_requests_per_s = 1.0 / max(degraded_get_seconds, 1e-9)
        service.breaker.reset()

        # ------------------------------------------------------------------
        # Dedup speedup: a changed community seed invalidates the three
        # Louvain stages (the expensive cone), so each batch is real
        # work.  Session-unique seeds keep the runs genuinely cold even
        # though the bench stage cache persists on disk.
        # ------------------------------------------------------------------
        seed_base = int(time.time()) % 1_000_000_000
        started = time.perf_counter()
        _post_run(url, {"community.seed": seed_base})
        single_cold_seconds = time.perf_counter() - started

        responses: list[dict] = []
        barrier = threading.Barrier(N_CONCURRENT_CLIENTS)

        def client() -> None:
            barrier.wait()
            responses.append(_post_run(url, {"community.seed": seed_base + 1}))

        threads = [
            threading.Thread(target=client)
            for _ in range(N_CONCURRENT_CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        concurrent_seconds = time.perf_counter() - started

        assert len({response["fingerprint"] for response in responses}) == 1
        batch_executions = service.pipeline_executions - executions_after_warm
        assert batch_executions == 2, "dedup failed: each batch should run once"
        speedup = (
            N_CONCURRENT_CLIENTS * single_cold_seconds
            / max(concurrent_seconds, 1e-9)
        )

        print()
        print(
            format_table(
                ["Measure", "Value"],
                [
                    ["warm request latency", f"{warm_seconds * 1000:.1f} ms"],
                    ["warm requests/sec", f"{requests_per_second:.1f}"],
                    [
                        "warm req/s, metrics on",
                        f"{1.0 / max(metrics_on_seconds, 1e-9):.1f}",
                    ],
                    [
                        "warm req/s, metrics off",
                        f"{1.0 / max(metrics_off_seconds, 1e-9):.1f}",
                    ],
                    ["metrics overhead ratio", f"{metrics_ratio:.3f}x"],
                    [
                        "degraded (breaker open) warm GET req/s",
                        f"{degraded_requests_per_s:.1f}",
                    ],
                    ["cold run (1 client)", f"{single_cold_seconds:.2f} s"],
                    [
                        f"cold batch ({N_CONCURRENT_CLIENTS} identical clients)",
                        f"{concurrent_seconds:.2f} s",
                    ],
                    ["pipeline executions in batch", batch_executions - 1],
                    ["dedup speedup vs no-dedup", f"{speedup:.1f}x"],
                ],
                title="SERVICE FRONT-END: WARM THROUGHPUT + REQUEST DEDUP",
            )
        )

        # Fold the serving-path numbers into the same persisted
        # trajectory the pipeline benches append to.
        entry = entry_header("service", anchor=REPO_ROOT)
        entry["service"] = {
            "warm_requests": N_WARM_REQUESTS,
            "warm_latency_ms": round(warm_seconds * 1000, 2),
            "warm_requests_per_s": round(requests_per_second, 1),
            "metrics_on_requests_per_s": round(
                1.0 / max(metrics_on_seconds, 1e-9), 1
            ),
            "metrics_off_requests_per_s": round(
                1.0 / max(metrics_off_seconds, 1e-9), 1
            ),
            "metrics_overhead_ratio": round(metrics_ratio, 3),
            "degraded": {
                "writes_shed_with": 503,
                "warm_get_latency_ms": round(degraded_get_seconds * 1000, 2),
                "warm_get_requests_per_s": round(degraded_requests_per_s, 1),
            },
            "cold_single_s": round(single_cold_seconds, 3),
            "cold_batch_clients": N_CONCURRENT_CLIENTS,
            "cold_batch_s": round(concurrent_seconds, 3),
            "dedup_speedup": round(speedup, 2),
        }
        path = append_entry(entry, REPO_ROOT / "BENCH_pipeline.json")
        print(f"service entry appended to {path}")
    finally:
        server.stop()
        service.close()
