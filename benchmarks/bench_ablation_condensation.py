"""Ablation A5 — condensation strategy comparison (paper future work).

"Further research should also investigate the effect of different graph
optimisation strategies": this bench condenses the same cleaned
locations with complete-linkage HAC (the paper's method), uniform grid
snapping, and k-means, then reports cluster counts, Rule-1 (100 m
diameter) violations and the worst diameter each produces.
"""

import numpy as np

from repro.cluster import (
    cluster_locations,
    grid_condense,
    kmeans_condense,
    pairwise_haversine_matrix,
)
from repro.reporting import format_table


def _audit(clustering, points):
    violations = 0
    worst = 0.0
    for cluster in clustering.clusters:
        if cluster.size < 2:
            continue
        member_points = [points[i] for i in cluster.member_location_ids]
        diameter = float(np.max(pairwise_haversine_matrix(member_points)))
        worst = max(worst, diameter)
        if diameter > 100.0 + 1e-6:
            violations += 1
    return violations, worst


def test_ablation_condensation_strategies(benchmark, paper_expansion):
    cleaned = paper_expansion.cleaned
    points = {r.location_id: r.point() for r in cleaned.locations()}
    stations = {r.location_id: r.point() for r in cleaned.stations()}
    hac_result = paper_expansion.candidates.clustering
    k = hac_result.n_clusters

    def run_alternatives():
        return {
            "grid_100m": grid_condense(points, stations, cell_m=100.0),
            "kmeans": kmeans_condense(points, stations, k=k),
        }

    alternatives = benchmark.pedantic(run_alternatives, rounds=1, iterations=1)
    strategies = {"hac_complete (paper)": hac_result, **alternatives}

    rows = []
    audits = {}
    for name, clustering in strategies.items():
        violations, worst = _audit(clustering, points)
        audits[name] = violations
        rows.append(
            [name, clustering.n_clusters, violations, f"{worst:.0f} m"]
        )
    print()
    print(
        format_table(
            ["Strategy", "#clusters", "Rule-1 violations", "Worst diameter"],
            rows,
            title="ABLATION A5: CONDENSATION STRATEGY (paper future work)",
        )
    )
    # Only the paper's complete-linkage construction guarantees Rule 1.
    assert audits["hac_complete (paper)"] == 0
    assert alternatives["kmeans"].n_clusters <= k
