"""Extension experiment — station-demand forecasting baselines.

Related work in the paper ([1], [22]) predicts station-level hourly
demand with GCNs; this bench establishes what the classical baselines
achieve on our expanded network: global mean vs calendar profile vs
shrunk calendar profile, trained on the first ~17 months and tested on
the last ~4.
"""

from datetime import date

from repro.forecast import (
    CalendarProfileModel,
    DemandSeries,
    GlobalMeanModel,
    SmoothedCalendarModel,
    evaluate,
)
from repro.reporting import format_table

CUTOFF = date(2021, 6, 1)


def test_forecast_baselines(benchmark, paper_expansion):
    series = DemandSeries.from_rentals(
        paper_expansion.cleaned.rentals(),
        paper_expansion.network.location_to_station,
    )
    train, test = series.split_by_date(CUTOFF)

    def run_all():
        return [
            evaluate(GlobalMeanModel(), "global_mean", train, test),
            evaluate(CalendarProfileModel(), "calendar_profile", train, test),
            evaluate(
                SmoothedCalendarModel(shrinkage=5.0),
                "smoothed_calendar", train, test,
            ),
        ]

    scores = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["Model", "MAE", "RMSE", "Test points"],
            [[s.model, s.mae, s.rmse, s.n_points] for s in scores],
            title=(
                "EXTENSION: DAILY STATION-DEMAND FORECAST BASELINES "
                f"(train < {CUTOFF}, test >= {CUTOFF})"
            ),
        )
    )
    by_name = {score.model: score.mae for score in scores}
    # Calendar structure must help: the COVID-era series is strongly
    # weekday/weekend patterned.
    assert by_name["smoothed_calendar"] <= by_name["global_mean"] + 1e-9
