"""Table I — dataset overview (original vs cleaned).

Regenerates the paper's Table I from the calibrated synthetic dataset
and benchmarks the six-rule cleaning pipeline itself.
"""

from conftest import print_with_comparisons

from repro.data import clean_dataset
from repro.reporting import experiment_table1
from repro.synth import generate_paper_dataset


def test_table1_cleaning(benchmark, paper_expansion):
    raw = generate_paper_dataset(seed=7)

    _, report = benchmark.pedantic(
        lambda: clean_dataset(raw), rounds=1, iterations=1
    )

    output = experiment_table1(report)
    print_with_comparisons(output)
    for outcome in report.outcomes:
        print(
            f"  rule {outcome.rule}: -{outcome.locations_removed} locations, "
            f"-{outcome.rentals_removed} rentals"
        )
    assert output.measured["original_rentals"] == 62_324
    assert output.measured["cleaned_rentals"] == 61_872
