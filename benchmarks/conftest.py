"""Shared state for the benchmark harness.

The paper-scale pipeline (seed 7) is executed once per session; each
bench then times its own experiment's regeneration step and prints the
paper-style table or series next to the paper's reference values, and
writes any figure artifacts under ``benchmarks/output/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import NetworkExpansionOptimiser
from repro.reporting import comparison_rows, format_table
from repro.synth import generate_paper_dataset

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def paper_expansion():
    """The full paper-calibrated pipeline run (seed 7).

    Stage values are cached on disk under ``benchmarks/output/.cache``,
    so every figure/table bench in a session — and every later bench
    session — reuses the pipeline instead of re-running it.  Delete the
    directory to force a cold run.
    """
    return NetworkExpansionOptimiser(
        generate_paper_dataset(seed=7), cache_dir=OUTPUT_DIR / ".cache"
    ).run()


@pytest.fixture(scope="session")
def output_dir() -> Path:
    """Directory collecting rendered figures and printed artifacts."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


def print_with_comparisons(output) -> None:
    """Print an experiment's text plus its paper-vs-measured table."""
    print()
    print(output.text)
    comparisons = output.comparisons()
    if comparisons:
        print(
            format_table(
                ["Measure", "Paper", "Measured", "Ratio"],
                comparison_rows(comparisons),
                title=f"PAPER vs MEASURED ({output.experiment})",
            )
        )
