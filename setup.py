"""Legacy setup shim for environments without PEP-517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Graph-based optimisation of network expansion in a dockless "
        "bike sharing system (ICDE 2024 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
