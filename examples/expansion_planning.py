"""Expansion planning: where should the operator build next?

This is the paper's motivating scenario.  The script runs the pipeline,
then reports the top recommended new stations with their expected
traffic, distance to the nearest existing station, and the community
they would join — the decision-support view a fleet planner needs.
It also renders the Figure-2 style map of the expanded network.

Run:  python examples/expansion_planning.py
"""

from repro import NetworkExpansionOptimiser
from repro.geo import haversine_m
from repro.reporting import format_table
from repro.synth import generate_paper_dataset
from repro.viz import colour_name, render_selected_map


def main() -> None:
    print("Running the expansion pipeline (seed 7)...")
    optimiser = NetworkExpansionOptimiser(generate_paper_dataset(seed=7))
    result = optimiser.run()
    network = result.network
    flow = network.directed_flow()

    print(
        f"Selected {result.n_new_stations} new stations "
        f"(threshold: candidate degree >= "
        f"{result.selection.degree_threshold}, spacing >= 250 m)."
    )

    station_points = {
        sid: network.stations[sid].point for sid in network.fixed_station_ids
    }
    rows = []
    new_ids = network.selected_station_ids
    traffic = {
        sid: flow.out_strength(sid) + flow.in_strength(sid) for sid in new_ids
    }
    for sid in sorted(new_ids, key=lambda s: -traffic[s])[:15]:
        station = network.stations[sid]
        nearest_fixed = min(
            haversine_m(station.point, point)
            for point in station_points.values()
        )
        community = result.basic.partition[sid]
        rows.append(
            [
                station.name,
                f"{station.point.lat:.4f}, {station.point.lon:.4f}",
                int(traffic[sid]),
                f"{nearest_fixed:.0f}",
                f"{community} ({colour_name(community)})",
            ]
        )

    print()
    print(
        format_table(
            ["Station", "Location", "Trips", "Nearest fixed (m)", "Community"],
            rows,
            title="TOP 15 RECOMMENDED NEW STATIONS BY TRAFFIC",
        )
    )

    canvas = render_selected_map(network)
    path = canvas.save("examples/output/expansion_map.svg")
    print(f"\nExpanded-network map written to {path}")


if __name__ == "__main__":
    main()
