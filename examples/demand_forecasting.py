"""Station-demand forecasting on the expanded network.

Builds daily demand series per station, fits the baseline forecasters,
and shows where calendar structure pays off — the groundwork for the
GCN-style demand prediction the paper's related work pursues.

Run:  python examples/demand_forecasting.py
"""

from datetime import date

from repro import NetworkExpansionOptimiser
from repro.forecast import (
    CalendarProfileModel,
    DemandSeries,
    GlobalMeanModel,
    SmoothedCalendarModel,
    evaluate,
)
from repro.reporting import format_table
from repro.synth import generate_paper_dataset

CUTOFF = date(2021, 6, 1)


def main() -> None:
    print("Running the expansion pipeline (seed 7)...")
    optimiser = NetworkExpansionOptimiser(generate_paper_dataset(seed=7))
    optimiser.clean()
    network = optimiser.build_network()
    cleaned, _ = optimiser.clean()

    print("Building daily demand series per station...")
    series = DemandSeries.from_rentals(
        cleaned.rentals(), network.location_to_station
    )
    print(
        f"  {len(series.stations())} stations x "
        f"{len(series) // max(1, len(series.stations()))} days "
        f"= {len(series):,} observations, {series.total_demand():,} trips"
    )

    train, test = series.split_by_date(CUTOFF)
    scores = [
        evaluate(GlobalMeanModel(), "global mean", train, test),
        evaluate(CalendarProfileModel(), "calendar profile", train, test),
        evaluate(SmoothedCalendarModel(5.0), "smoothed calendar", train, test),
    ]
    print()
    print(
        format_table(
            ["Model", "MAE (trips/station/day)", "RMSE"],
            [[s.model, s.mae, s.rmse] for s in scores],
            title=f"FORECAST ERROR, TEST PERIOD {CUTOFF} ONWARDS",
        )
    )

    # Where does the calendar model help most?  The strongly weekly
    # stations — leisure poles with weekend spikes.
    calendar = CalendarProfileModel().fit(train)
    mean = GlobalMeanModel().fit(train)
    gains: dict[int, float] = {}
    for point in test.points:
        gain = abs(mean.predict(point) - point.count) - abs(
            calendar.predict(point) - point.count
        )
        gains[point.station_id] = gains.get(point.station_id, 0.0) + gain
    top = sorted(gains.items(), key=lambda item: -item[1])[:8]
    print()
    print(
        format_table(
            ["Station", "Cumulative MAE gain vs global mean"],
            [
                [network.stations[sid].name, f"{gain:.1f}"]
                for sid, gain in top
            ],
            title="STATIONS WHERE CALENDAR STRUCTURE HELPS MOST",
        )
    )


if __name__ == "__main__":
    main()
