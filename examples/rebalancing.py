"""Fleet rebalancing from community structure.

The paper's conclusion: "bikes could be moved from Communities 2, 4 and
6 to Communities 1, 3 and 7 each Friday night to prepare for the shift
in demand over the weekend."  This script turns that observation into a
concrete plan: it classifies G_Day communities into weekday-commute
donors and weekend-leisure receivers, sizes the transfer from the
observed weekend demand shift, and lists per-station flux (bike
sinks/sources) to pick pickup and drop-off points.

Run:  python examples/rebalancing.py
"""

from repro import NetworkExpansionOptimiser
from repro.core import daily_profile, weekend_share
from repro.metrics import fluxes
from repro.reporting import format_table
from repro.synth import generate_paper_dataset

N_BIKES = 95
WEEKEND_UNIFORM = 2.0 / 7.0


def main() -> None:
    print("Running the expansion pipeline (seed 7)...")
    optimiser = NetworkExpansionOptimiser(generate_paper_dataset(seed=7))
    result = optimiser.run()
    trips = result.network.trips
    partition = result.day.station_partition

    profiles = daily_profile(trips, partition)
    sizes = partition.sizes()
    volumes: dict[int, int] = {}
    for trip in trips:
        label = partition[trip.origin]
        volumes[label] = volumes.get(label, 0) + 1

    donors = []
    receivers = []
    rows = []
    for label, profile in sorted(profiles.items()):
        share = weekend_share(profile)
        role = "receiver" if share > WEEKEND_UNIFORM else "donor"
        (receivers if share > WEEKEND_UNIFORM else donors).append(label)
        rows.append(
            [label, sizes[label], volumes.get(label, 0), f"{share:.2f}", role]
        )
    print()
    print(
        format_table(
            ["Community", "Stations", "Trips", "Weekend share", "Friday-night role"],
            rows,
            title="G_DAY COMMUNITIES AS REBALANCING DONORS/RECEIVERS",
        )
    )

    # Size the Friday-night transfer: bikes proportional to the excess
    # weekend demand share of the receiving communities.
    total_volume = sum(volumes.values())
    excess = sum(
        (weekend_share(profiles[label]) - WEEKEND_UNIFORM)
        * volumes.get(label, 0)
        for label in receivers
    )
    transfer = max(1, round(N_BIKES * excess / max(1, total_volume) * 7 / 2))
    print(
        f"\nPlan: move ~{transfer} of {N_BIKES} bikes from communities "
        f"{donors} to communities {receivers} each Friday night."
    )

    # Per-station flux inside the receiving communities: the strongest
    # weekday sinks already hold bikes; drop new ones at the sources.
    flow = result.network.directed_flow()
    station_flux = fluxes(flow)
    for label in receivers:
        members = [
            sid for sid in partition.assignment
            if partition[sid] == label
        ]
        sources = sorted(members, key=lambda sid: station_flux[sid])[:3]
        print(f"  community {label}: drop bikes at stations {sources} "
              f"(strongest weekday outflow)")


if __name__ == "__main__":
    main()
