"""Temporal community analysis: how usage patterns shape the network.

Reproduces the paper's Section V-C study: Louvain at three temporal
granularities (none / day-of-week / hour-of-day), the rising modularity
trend, and the per-community temporal profiles behind Figures 5 and 7.
Renders the community maps and profile charts to examples/output/.

Run:  python examples/temporal_communities.py
"""

from repro import NetworkExpansionOptimiser
from repro.core import (
    DAY_NAMES,
    commute_peak_share,
    daily_profile,
    hourly_profile,
    midday_share,
    self_containment,
    weekend_share,
)
from repro.reporting import format_table
from repro.synth import generate_paper_dataset
from repro.viz import render_community_map, render_profile_chart


def main() -> None:
    print("Running the expansion pipeline (seed 7)...")
    optimiser = NetworkExpansionOptimiser(generate_paper_dataset(seed=7))
    result = optimiser.run()
    trips = result.network.trips

    print()
    print(
        format_table(
            ["Graph", "Temporal feature", "#communities", "Modularity", "Self-contained"],
            [
                [
                    "G_Basic", "none",
                    result.basic.n_communities,
                    result.basic.modularity,
                    self_containment(trips, result.basic.partition),
                ],
                [
                    "G_Day", "day of week",
                    result.day.n_communities,
                    result.day.modularity,
                    self_containment(trips, result.day.station_partition),
                ],
                [
                    "G_Hour", "hour of day",
                    result.hour.n_communities,
                    result.hour.modularity,
                    self_containment(trips, result.hour.station_partition),
                ],
            ],
            title="COMMUNITY DETECTION AT THREE TEMPORAL GRANULARITIES",
        )
    )

    day_profiles = daily_profile(trips, result.day.station_partition)
    print("\nG_Day communities by weekend share (paper: leisure vs commute):")
    for label, profile in sorted(
        day_profiles.items(), key=lambda kv: -weekend_share(kv[1])
    ):
        kind = "weekend/leisure" if weekend_share(profile) > 0.3 else "weekday/commute"
        print(f"  community {label}: weekend share {weekend_share(profile):.2f} ({kind})")

    hour_profiles = hourly_profile(trips, result.hour.station_partition)
    print("\nG_Hour communities by peak type:")
    for label, profile in sorted(hour_profiles.items()):
        commute = commute_peak_share(profile)
        midday = midday_share(profile)
        kind = "commute-peaked" if commute > midday * 1.5 else "midday/leisure"
        print(
            f"  community {label}: commute {commute:.2f}, midday {midday:.2f} ({kind})"
        )

    for name, partition in (
        ("gbasic", result.basic.partition),
        ("gday", result.day.station_partition),
        ("ghour", result.hour.station_partition),
    ):
        canvas = render_community_map(
            result.network, partition, f"Communities: {name}"
        )
        path = canvas.save(f"examples/output/communities_{name}.svg")
        print(f"map -> {path}")

    for name, profiles, labels in (
        ("daily", day_profiles, list(DAY_NAMES)),
        ("hourly", hour_profiles, [f"{h:02d}" for h in range(24)]),
    ):
        canvas = render_profile_chart(profiles, labels, f"{name} profiles")
        path = canvas.save(f"examples/output/profiles_{name}.svg")
        print(f"chart -> {path}")


if __name__ == "__main__":
    main()
