"""Network health report: metrics, profiles and outlier validation.

Combines the metrics substrate with the behavioural-profile analysis to
answer the paper's validation question quantitatively: do the newly
selected stations behave like the existing ones?  Also exports the
selected graph to GraphML for downstream tools (Gephi, igraph).

Run:  python examples/network_health.py
"""

from repro import NetworkExpansionOptimiser
from repro.analysis import ODMatrix, behavioural_outliers, build_profiles
from repro.graphdb import weighted_graph_to_graphml
from repro.metrics import (
    betweenness_centrality,
    gini,
    pagerank,
    strengths,
    summarise,
)
from repro.reporting import format_table
from repro.synth import generate_paper_dataset


def main() -> None:
    print("Running the expansion pipeline (seed 7)...")
    optimiser = NetworkExpansionOptimiser(generate_paper_dataset(seed=7))
    result = optimiser.run()
    network = result.network
    g_basic = network.g_basic()

    summary = summarise(g_basic)
    print()
    print(
        format_table(
            ["Metric", "Value"],
            [
                ["stations", summary.n_nodes],
                ["undirected edges", summary.n_edges],
                ["mean degree", summary.mean_degree],
                ["mean strength (trips)", summary.mean_strength],
                ["average clustering coefficient", summary.average_clustering],
                ["strength Gini (network equity)", summary.strength_gini],
                ["connected components", summary.n_components],
            ],
            title="EXPANDED-NETWORK GLOBAL METRICS",
        )
    )

    # Most central stations: candidates for capacity upgrades.
    ranks = pagerank(g_basic)
    betweenness = betweenness_centrality(g_basic)
    volume = strengths(g_basic)
    top = sorted(ranks, key=lambda sid: -ranks[sid])[:8]
    print()
    print(
        format_table(
            ["Station", "Kind", "PageRank", "Betweenness", "Trips"],
            [
                [
                    network.stations[sid].name,
                    network.stations[sid].kind,
                    ranks[sid],
                    betweenness[sid],
                    int(volume[sid]),
                ]
                for sid in top
            ],
            title="MOST CENTRAL STATIONS",
        )
    )

    # The validation question: new stations behaving unlike any old one.
    profiles = build_profiles(network)
    outliers = behavioural_outliers(profiles, top_k=8)
    print()
    print(
        format_table(
            ["New station", "Distance to nearest fixed profile"],
            [
                [network.stations[sid].name, f"{distance:.3f}"]
                for sid, distance in outliers
            ],
            title="LEAST TYPICAL NEW STATIONS (profile distance)",
        )
    )

    # Community-level OD equity.
    matrix = ODMatrix.from_trips(network.trips)
    collapsed = matrix.collapse(result.basic.partition)
    print(
        f"\nCommunity-level self-containment: {collapsed.self_containment():.1%} "
        f"(paper: ~74%)"
    )
    out_totals = list(matrix.out_totals().values())
    print(f"Station demand Gini: {gini(out_totals):.3f}")

    path = "examples/output/selected_graph.graphml"
    weighted_graph_to_graphml(g_basic, path)
    print(f"GraphML export -> {path}")


if __name__ == "__main__":
    main()
