"""Quickstart: run the paper's full expansion pipeline in ~a minute.

Generates the calibrated synthetic Moby dataset, cleans it, condenses
dockless locations into candidate stations with HAC, selects new
stations with Algorithm 1, and validates the expansion with community
detection at three temporal granularities — then prints every table the
paper reports.

Run:  python examples/quickstart.py
"""

from repro import NetworkExpansionOptimiser, validate_expansion
from repro.reporting import (
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
    experiment_table6,
)
from repro.synth import generate_paper_dataset


def main() -> None:
    print("Generating the synthetic Moby Bikes dataset (seed 7)...")
    raw = generate_paper_dataset(seed=7)
    print(
        f"  raw: {raw.n_stations} stations, {raw.n_rentals:,} rentals, "
        f"{raw.n_locations:,} locations"
    )

    print("Running the expansion pipeline...")
    optimiser = NetworkExpansionOptimiser(raw)
    result = optimiser.run()

    print()
    print(experiment_table1(result.cleaning_report).text)
    print()
    print(experiment_table2(result).text)
    print()
    print(experiment_table3(result).text)
    print()
    print(experiment_table4(result).text)
    print()
    print(experiment_table5(result).text)
    print()
    print(experiment_table6(result).text)

    print()
    report = validate_expansion(result)
    status = "ALL CHECKS PASSED" if report.all_passed else "FAILURES"
    print(f"Validation: {status}")
    for name, detail in report.details.items():
        flag = "ok " if report.checks[name] else "FAIL"
        print(f"  [{flag}] {name}: {detail}")


if __name__ == "__main__":
    main()
