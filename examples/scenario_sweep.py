"""Scenario sweep: three expansion configs through one shared cache.

The staged :class:`~repro.pipeline.PipelineRunner` fingerprints every
stage by (dataset digest, relevant config sections, parent stages), so
a sweep over temporal-coupling values recomputes only the G_Day/G_Hour
community stages — cleaning, HAC condensation, Algorithm 1 and the
network rebuild run once for the whole grid.

Run:  python examples/scenario_sweep.py
"""

from repro import NetworkExpansionOptimiser
from repro.reporting import sweep_summary
from repro.synth import generate_paper_dataset


def main() -> None:
    print("Generating the synthetic Moby Bikes dataset (seed 7)...")
    raw = generate_paper_dataset(seed=7)

    optimiser = NetworkExpansionOptimiser(raw)
    axes = {"temporal.coupling": [0.05, 0.12, 0.30]}
    print(f"Sweeping {axes} — shared stages are computed once...")
    results = optimiser.run_sweep(axes, jobs=3)

    labels = [f"coupling={value}" for value in axes["temporal.coupling"]]
    print()
    print(
        sweep_summary(
            list(zip(labels, results)),
            title="TEMPORAL COUPLING SWEEP (paper default: 0.12)",
        )
    )
    print()
    print(
        "Lower coupling lets the time slices diverge: more, finer "
        "temporal communities and higher modularity — the paper's "
        "G_Basic -> G_Day -> G_Hour trend, now tunable per scenario."
    )


if __name__ == "__main__":
    main()
