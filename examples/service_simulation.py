"""Service simulation: does the expansion actually help riders?

Replays the 21 months of demand against the original and expanded
networks in the fleet simulator and reports service rates, walk rates
and the worst stockout stations — closing the loop on the paper's
operational motivation.

Run:  python examples/service_simulation.py
"""

from repro import NetworkExpansionOptimiser
from repro.analysis import plan_weekend_rebalancing
from repro.reporting import format_table
from repro.sim import compare_networks
from repro.synth import generate_paper_dataset


def main() -> None:
    print("Running the expansion pipeline (seed 7)...")
    optimiser = NetworkExpansionOptimiser(generate_paper_dataset(seed=7))
    result = optimiser.run()

    plan = plan_weekend_rebalancing(
        result.network, optimiser.detect_day().station_partition, fleet_size=95
    )
    print("Simulating 21 months of demand against three configurations...")
    comparisons = compare_networks(
        result, n_bikes=95, walk_radius_m=300.0, rebalancing_plan=plan
    )

    rows = [
        [
            comparison.name,
            comparison.n_stations,
            f"{comparison.result.service_rate:.1%}",
            f"{comparison.result.walk_rate:.1%}",
            comparison.result.unserved,
            comparison.result.bikes_moved_by_rebalancing,
        ]
        for comparison in comparisons
    ]
    print()
    print(
        format_table(
            ["Configuration", "Stations", "Service rate", "Walk rate",
             "Unserved", "Bikes rebalanced"],
            rows,
            title="SERVICE-LEVEL COMPARISON",
        )
    )

    worst = sorted(
        comparisons[-1].result.stockout_minutes.items(),
        key=lambda item: -item[1],
    )[:8]
    if worst:
        print()
        print(
            format_table(
                ["Station", "Stockout demand (ride-minutes lost)"],
                [
                    [result.network.stations[sid].name, f"{minutes:.0f}"]
                    for sid, minutes in worst
                ],
                title="WORST STOCKOUT STATIONS (final configuration)",
            )
        )


if __name__ == "__main__":
    main()
