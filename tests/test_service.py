"""ExpansionService: jobs, deduplication, persistence, failure paths."""

import threading

import pytest

from repro.exceptions import JobFailedError, ServiceError
from repro.service import (
    DONE,
    DatasetRef,
    ExpansionService,
    ScenarioSpec,
)


@pytest.fixture(scope="module")
def stage_cache_dir(tmp_path_factory):
    """One disk stage cache shared by every service in this module.

    The first pipeline run warms it; later services recompute nothing,
    keeping the module fast while still counting executions per service.
    """
    return tmp_path_factory.mktemp("service-stage-cache")


@pytest.fixture()
def service(small_raw, stage_cache_dir):
    with ExpansionService(cache_dir=stage_cache_dir, max_workers=4) as svc:
        svc.register_dataset("small", small_raw)
        yield svc


def small_spec(**kwargs) -> ScenarioSpec:
    kwargs.setdefault("dataset", DatasetRef.named("small"))
    return ScenarioSpec(**kwargs)


class TestRun:
    def test_run_returns_envelope(self, service, small_result):
        envelope = service.run(small_spec(), timeout=300)
        assert envelope["type"] == "ResultEnvelope"
        assert envelope["outputs"]["run"]["headline"] == small_result.headline()
        assert envelope["spec"]["outputs"] == ["run"]
        assert envelope["fingerprint"]

    def test_job_lifecycle_document(self, service):
        job = service.submit(small_spec())
        job.wait(300)
        assert job.status == DONE
        payload = job.to_dict()
        assert payload["result_url"].endswith(job.fingerprint)
        assert service.job(job.job_id) is job
        assert service.job("job-999999") is None

    def test_rebalance_and_report_outputs(self, service):
        envelope = service.run(
            small_spec(
                outputs=("run", "rebalance", "report"),
                fleet_size=40,
                report_title="svc",
            ),
            timeout=300,
        )
        plan = envelope["outputs"]["rebalance"]["plan"]
        assert plan["type"] == "RebalancingPlan"
        assert envelope["outputs"]["rebalance"]["fleet_size"] == 40
        assert envelope["outputs"]["report"]["markdown"].startswith("# svc")

    def test_sweep_output(self, service):
        envelope = service.run(
            small_spec(
                outputs=("sweep",),
                sweep_axes={"temporal.coupling": [0.05, 0.25]},
            ),
            timeout=300,
        )
        sweep = envelope["outputs"]["sweep"]
        assert [s["label"] for s in sweep["scenarios"]] == [
            "temporal.coupling=0.05",
            "temporal.coupling=0.25",
        ]
        assert "SCENARIO SWEEP (2 configs)" in sweep["table"]

    def test_submit_accepts_spec_dicts(self, service):
        envelope = service.run(
            {
                "type": "ScenarioSpec",
                "dataset": {"kind": "named", "name": "small"},
                "outputs": ["run"],
            },
            timeout=300,
        )
        assert envelope["outputs"]["run"]["type"] == "ExpansionResult"


class TestDeduplication:
    N_CLIENTS = 8

    def test_concurrent_identical_requests_run_once(self, small_raw, stage_cache_dir, tmp_path):
        # A private results store so nothing is pre-computed for this
        # fingerprint; the shared stage cache does not matter here —
        # executions are counted per job, not per stage.
        with ExpansionService(
            cache_dir=stage_cache_dir, results_dir=tmp_path / "results", max_workers=4
        ) as svc:
            svc.register_dataset("small", small_raw)
            spec = small_spec(overrides={"community.seed": 1234})
            barrier = threading.Barrier(self.N_CLIENTS)
            jobs = []

            def client():
                barrier.wait()
                jobs.append(svc.submit(spec))

            threads = [
                threading.Thread(target=client) for _ in range(self.N_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            envelopes = [job.wait(300) for job in jobs]

            assert svc.pipeline_executions == 1
            assert len({job.job_id for job in jobs}) == 1
            assert jobs[0].subscribers == self.N_CLIENTS
            assert all(env == envelopes[0] for env in envelopes)

    def test_resubmission_after_completion_serves_stored_result(self, service):
        first = service.run(small_spec(), timeout=300)
        executions = service.pipeline_executions
        second = service.run(small_spec(), timeout=300)
        assert second == first
        assert service.pipeline_executions == executions

    def test_distinct_specs_execute_separately(self, service):
        spec_a = small_spec(overrides={"community.seed": 1})
        spec_b = small_spec(overrides={"community.seed": 2})
        job_a = service.submit(spec_a)
        job_b = service.submit(spec_b)
        assert job_a.fingerprint != job_b.fingerprint
        env_a = job_a.wait(300)
        env_b = job_b.wait(300)
        assert env_a["fingerprint"] != env_b["fingerprint"]


class TestResultsStore:
    def test_envelopes_survive_service_restarts(self, small_raw, stage_cache_dir, tmp_path):
        results_dir = tmp_path / "results"
        spec = small_spec()
        with ExpansionService(
            cache_dir=stage_cache_dir, results_dir=results_dir
        ) as first:
            first.register_dataset("small", small_raw)
            envelope = first.run(spec, timeout=300)
        with ExpansionService(
            cache_dir=stage_cache_dir, results_dir=results_dir
        ) as second:
            second.register_dataset("small", small_raw)
            again = second.run(spec, timeout=300)
            assert again == envelope
            assert second.pipeline_executions == 0

    def test_bad_fingerprint_rejected(self, service):
        with pytest.raises(ValueError):
            service.results.raw("../../etc/passwd")

    def test_stale_envelope_schema_is_recomputed_not_served(self, service):
        """A persisted envelope from an older schema reads as a miss."""
        spec = small_spec(overrides={"community.seed": 31337})
        raw, digest = service._resolve_dataset(spec)
        fingerprint = spec.fingerprint(digest)
        service.results.put(
            fingerprint,
            {"type": "ResultEnvelope", "envelope_version": 1, "outputs": {}},
        )
        executions = service.pipeline_executions
        envelope = service.run(spec, timeout=300)
        assert service.pipeline_executions == executions + 1  # recomputed
        from repro.serialize import ENVELOPE_VERSION

        assert envelope["envelope_version"] == ENVELOPE_VERSION
        stored = service.results.get(fingerprint)
        assert stored["envelope_version"] == ENVELOPE_VERSION  # overwritten


class TestFailures:
    def test_missing_named_dataset(self, service):
        with pytest.raises(ServiceError):
            service.submit(ScenarioSpec(dataset=DatasetRef.named("nope")))

    def test_missing_csv_dataset(self, service, tmp_path):
        with pytest.raises(ServiceError):
            service.submit(
                ScenarioSpec(dataset=DatasetRef.csv(tmp_path / "nope"))
            )

    def test_failed_job_raises_on_wait(self, small_raw, tmp_path):
        # An unclusterable config: degree_threshold so high that no
        # candidate survives is fine, but an empty-cleaned dataset is a
        # guaranteed PipelineError; simulate by registering a dataset
        # whose rentals were all stripped.
        from repro.data import MobyDataset

        empty = MobyDataset.from_records(
            list(small_raw.locations())[:5], []
        )
        with ExpansionService() as svc:
            svc.register_dataset("empty", empty)
            job = svc.submit(ScenarioSpec(dataset=DatasetRef.named("empty")))
            with pytest.raises(JobFailedError):
                job.wait(300)
            assert job.status == "failed"
            assert job.error

    def test_stats_shape(self, service):
        service.run(small_spec(), timeout=300)
        stats = service.stats()
        assert stats["status"] == "ok"
        assert stats["jobs"] >= 1
        assert "cache" in stats and "evictions" in stats["cache"]
