"""Tests for geographic HAC with fixed stations."""

import pytest

np = pytest.importorskip("numpy")

from repro.cluster import (
    NearestStationAssigner,
    cluster_diameter_m,
    cluster_locations,
    pairwise_haversine_matrix,
    preassign_to_stations,
    proximity_components,
)
from repro.config import ClusteringConfig
from repro.exceptions import ClusteringError
from repro.geo import GeoPoint, destination_point, haversine_m

CENTER = GeoPoint(53.3473, -6.2591)


def at(bearing: float, distance: float) -> GeoPoint:
    return destination_point(CENTER, bearing, distance)


class TestPairwiseMatrix:
    def test_matches_scalar_haversine(self):
        points = [CENTER, at(0.0, 500.0), at(90.0, 1200.0)]
        matrix = pairwise_haversine_matrix(points)
        for i in range(3):
            for j in range(3):
                assert matrix[i, j] == pytest.approx(
                    haversine_m(points[i], points[j]), abs=1e-6
                )

    def test_zero_diagonal_and_symmetry(self):
        points = [at(float(b), 300.0) for b in range(0, 360, 60)]
        matrix = pairwise_haversine_matrix(points)
        assert np.allclose(np.diag(matrix), 0.0)
        assert np.allclose(matrix, matrix.T)


class TestProximityComponents:
    def test_two_clumps(self):
        points = {
            1: CENTER,
            2: at(0.0, 50.0),
            3: at(0.0, 90.0),
            4: at(0.0, 2_000.0),
            5: at(0.0, 2_060.0),
        }
        components = proximity_components([1, 2, 3, 4, 5], points, 100.0)
        assert [set(c) for c in components] == [{1, 2, 3}, {4, 5}]

    def test_chain_connects_transitively(self):
        # 1-2, 2-3 within 100 m but 1-3 beyond: still one component.
        points = {1: CENTER, 2: at(0.0, 90.0), 3: at(0.0, 180.0)}
        components = proximity_components([1, 2, 3], points, 100.0)
        assert len(components) == 1

    def test_empty(self):
        assert proximity_components([], {}, 100.0) == []


class TestPreassignment:
    def test_within_radius_goes_to_station(self):
        stations = {0: CENTER}
        locations = {0: CENTER, 1: at(45.0, 30.0), 2: at(45.0, 80.0)}
        members, leftover = preassign_to_stations(locations, stations, 50.0)
        assert members[0] == [0, 1]
        assert leftover == [2]

    def test_nearest_station_wins(self):
        stations = {0: CENTER, 1: at(0.0, 80.0)}
        locations = {0: CENTER, 1: at(0.0, 80.0), 2: at(0.0, 50.0)}
        members, leftover = preassign_to_stations(locations, stations, 50.0)
        assert 2 in members[1]  # 30 m from station 1, 50 m from station 0
        assert leftover == []


class TestClusterLocations:
    def test_boundary_rule_enforced(self):
        # A 300 m line of points at 40 m spacing: one proximity
        # component, but complete-linkage cut at 100 m must split it.
        points = {i: at(90.0, 40.0 * i) for i in range(8)}
        result = cluster_locations(points, {}, ClusteringConfig())
        assert result.n_clusters >= 3
        for cluster in result.clusters:
            assert cluster_diameter_m(cluster, points) <= 100.0 + 1e-6

    def test_assignment_covers_everything(self):
        points = {i: at(float(i * 37 % 360), 60.0 * (i % 6)) for i in range(30)}
        stations = {0: points[0]}
        result = cluster_locations(points, stations)
        assignment = result.assignment()
        assert set(assignment) == set(points)

    def test_station_groups_absorb_near_locations(self):
        stations = {0: CENTER}
        points = {0: CENTER, 1: at(10.0, 20.0), 2: at(10.0, 600.0)}
        result = cluster_locations(points, stations)
        assert result.station_members[0] == [0, 1]
        assert result.n_clusters == 1
        assert result.clusters[0].member_location_ids == [2]

    def test_centroid_is_member_mean(self):
        a, b = at(90.0, 1_000.0), at(90.0, 1_040.0)
        points = {1: a, 2: b}
        result = cluster_locations(points, {})
        [cluster] = result.clusters
        assert cluster.centroid.lat == pytest.approx((a.lat + b.lat) / 2)
        assert cluster.centroid.lon == pytest.approx((a.lon + b.lon) / 2)

    def test_singleton_cluster(self):
        points = {5: CENTER}
        result = cluster_locations(points, {})
        assert result.n_clusters == 1
        assert result.clusters[0].size == 1
        assert cluster_diameter_m(result.clusters[0], points) == 0.0

    def test_cluster_ids_sequential(self):
        points = {i: at(0.0, 500.0 * i) for i in range(5)}
        result = cluster_locations(points, {})
        assert [c.cluster_id for c in result.clusters] == list(range(5))

    def test_small_world_rule1_holds(self, small_raw):
        from repro.data import clean_dataset

        cleaned, _ = clean_dataset(small_raw)
        points = {r.location_id: r.point() for r in cleaned.locations()}
        stations = {r.location_id: r.point() for r in cleaned.stations()}
        result = cluster_locations(points, stations)
        # Every location accounted for exactly once.
        assignment = result.assignment()
        assert set(assignment) == set(points)
        # Rule 1 on every cluster.
        for cluster in result.clusters:
            assert cluster_diameter_m(cluster, points) <= 100.0 + 1e-6


class TestNearestStationAssigner:
    def test_assigns_to_nearest(self):
        assigner = NearestStationAssigner({1: CENTER, 2: at(0.0, 1_000.0)})
        station, distance = assigner.nearest(at(0.0, 900.0))
        assert station == 2
        assert distance == pytest.approx(100.0, abs=1.0)

    def test_assign_all(self):
        assigner = NearestStationAssigner({1: CENTER, 2: at(0.0, 1_000.0)})
        mapping = assigner.assign_all({10: at(0.0, 100.0), 11: at(0.0, 950.0)})
        assert mapping == {10: 1, 11: 2}

    def test_empty_stations_rejected(self):
        with pytest.raises(ClusteringError):
            NearestStationAssigner({})
