"""Unit tests for the in-memory relational engine."""

from datetime import datetime

import pytest

from repro.data import (
    ColumnSpec,
    Database,
    LOCATION_SCHEMA,
    RENTAL_SCHEMA,
    Table,
    TableSchema,
    schema_from_columns,
)
from repro.exceptions import (
    DuplicateKeyError,
    MissingRowError,
    ReferentialIntegrityError,
    SchemaError,
)

SIMPLE = schema_from_columns(
    [("id", int, False), ("name", str, False), ("score", float, True)],
    primary_key="id",
)


def make_table() -> Table:
    return Table("things", SIMPLE)


class TestSchema:
    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSpec("bad", list)  # type: ignore[arg-type]

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                columns=(ColumnSpec("a", int), ColumnSpec("a", int)),
                primary_key="a",
            )

    def test_pk_must_exist(self):
        with pytest.raises(SchemaError):
            schema_from_columns([("a", int, False)], primary_key="b")

    def test_pk_not_nullable(self):
        with pytest.raises(SchemaError):
            schema_from_columns([("a", int, True)], primary_key="a")

    def test_int_widens_to_float(self):
        spec = ColumnSpec("x", float, False)
        assert spec.validate(3) == 3.0
        assert isinstance(spec.validate(3), float)

    def test_bool_is_not_int(self):
        spec = ColumnSpec("x", int, False)
        with pytest.raises(SchemaError):
            spec.validate(True)

    def test_null_rules(self):
        nullable = ColumnSpec("x", int, True)
        assert nullable.validate(None) is None
        strict = ColumnSpec("x", int, False)
        with pytest.raises(SchemaError):
            strict.validate(None)

    def test_validate_row_extra_column(self):
        with pytest.raises(SchemaError):
            SIMPLE.validate_row({"id": 1, "name": "a", "bogus": 2})

    def test_missing_nullable_becomes_none(self):
        row = SIMPLE.validate_row({"id": 1, "name": "a"})
        assert row["score"] is None

    def test_column_lookup(self):
        assert SIMPLE.column("name").py_type is str
        with pytest.raises(SchemaError):
            SIMPLE.column("ghost")


class TestTable:
    def test_insert_and_get(self):
        table = make_table()
        table.insert({"id": 1, "name": "a", "score": 2.0})
        assert table.get(1)["name"] == "a"

    def test_get_returns_copy(self):
        table = make_table()
        table.insert({"id": 1, "name": "a", "score": None})
        row = table.get(1)
        row["name"] = "mutated"
        assert table.get(1)["name"] == "a"

    def test_duplicate_pk_rejected(self):
        table = make_table()
        table.insert({"id": 1, "name": "a", "score": None})
        with pytest.raises(DuplicateKeyError):
            table.insert({"id": 1, "name": "b", "score": None})

    def test_missing_get_raises(self):
        with pytest.raises(MissingRowError):
            make_table().get(99)

    def test_maybe_get(self):
        table = make_table()
        assert table.maybe_get(1) is None
        table.insert({"id": 1, "name": "a", "score": None})
        assert table.maybe_get(1) is not None

    def test_delete(self):
        table = make_table()
        table.insert({"id": 1, "name": "a", "score": None})
        removed = table.delete(1)
        assert removed["name"] == "a"
        assert len(table) == 0
        with pytest.raises(MissingRowError):
            table.delete(1)

    def test_delete_where(self):
        table = make_table()
        table.insert_many(
            {"id": i, "name": "even" if i % 2 == 0 else "odd", "score": None}
            for i in range(10)
        )
        removed = table.delete_where(lambda row: row["name"] == "even")
        assert removed == 5
        assert len(table) == 5

    def test_scan_with_predicate(self):
        table = make_table()
        table.insert_many(
            {"id": i, "name": str(i), "score": float(i)} for i in range(5)
        )
        hits = list(table.scan(lambda row: row["score"] > 2.0))
        assert {row["id"] for row in hits} == {3, 4}

    def test_lookup_without_index(self):
        table = make_table()
        table.insert({"id": 1, "name": "x", "score": None})
        table.insert({"id": 2, "name": "x", "score": None})
        assert {row["id"] for row in table.lookup("name", "x")} == {1, 2}

    def test_lookup_with_index(self):
        table = make_table()
        table.create_index("name")
        table.insert({"id": 1, "name": "x", "score": None})
        table.insert({"id": 2, "name": "y", "score": None})
        assert [row["id"] for row in table.lookup("name", "x")] == [1]

    def test_index_tracks_deletes(self):
        table = make_table()
        table.create_index("name")
        table.insert({"id": 1, "name": "x", "score": None})
        table.delete(1)
        assert table.lookup("name", "x") == []

    def test_index_created_after_rows(self):
        table = make_table()
        table.insert({"id": 1, "name": "x", "score": None})
        table.create_index("name")
        assert [row["id"] for row in table.lookup("name", "x")] == [1]

    def test_distinct(self):
        table = make_table()
        table.insert_many(
            {"id": i, "name": "a" if i < 3 else "b", "score": None}
            for i in range(5)
        )
        assert table.distinct("name") == {"a", "b"}

    def test_contains_and_keys(self):
        table = make_table()
        table.insert({"id": 42, "name": "x", "score": None})
        assert 42 in table
        assert list(table.keys()) == [42]


class TestDatabase:
    def _db(self) -> Database:
        db = Database()
        parent = db.create_table("parents", schema_from_columns(
            [("id", int, False)], primary_key="id"
        ))
        child = db.create_table("children", schema_from_columns(
            [("id", int, False), ("parent_id", int, True)], primary_key="id"
        ))
        db.add_foreign_key("children", "parent_id", "parents")
        parent.insert({"id": 1})
        child.insert({"id": 10, "parent_id": 1})
        return db

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("t", SIMPLE)
        with pytest.raises(SchemaError):
            db.create_table("t", SIMPLE)

    def test_missing_table_raises(self):
        with pytest.raises(SchemaError):
            Database().table("ghost")

    def test_integrity_ok(self):
        self._db().check_integrity()

    def test_dangling_reference_detected(self):
        db = self._db()
        db.table("children").insert({"id": 11, "parent_id": 99})
        violations = db.foreign_key_violations()
        assert len(violations) == 1
        assert violations[0][1] == 11
        with pytest.raises(ReferentialIntegrityError):
            db.check_integrity()

    def test_null_reference_allowed(self):
        db = self._db()
        db.table("children").insert({"id": 12, "parent_id": None})
        db.check_integrity()

    def test_table_names(self):
        assert self._db().table_names() == ["children", "parents"]


class TestMobySchemas:
    def test_location_schema_roundtrip(self):
        table = Table("locations", LOCATION_SCHEMA)
        table.insert(
            {"location_id": 1, "lat": 53.3, "lon": -6.2, "is_station": True, "name": "x"}
        )
        assert table.get(1)["is_station"] is True

    def test_rental_schema_accepts_datetime(self):
        table = Table("rentals", RENTAL_SCHEMA)
        table.insert(
            {
                "rental_id": 1,
                "bike_id": 2,
                "started_at": datetime(2020, 5, 1, 8, 0),
                "ended_at": datetime(2020, 5, 1, 8, 30),
                "rental_location_id": None,
                "return_location_id": 3,
            }
        )
        assert table.get(1)["rental_location_id"] is None
