"""DatasetStore: naming, digests, overwrite/eviction, service wiring."""

import json

import pytest

from repro.data import MobyDataset
from repro.exceptions import ServiceError
from repro.pipeline.fingerprint import dataset_digest
from repro.service import DatasetRef, DatasetStore, ExpansionService, ScenarioSpec
from repro.service.datasets import check_dataset_name


def tiny_dataset(n_rentals: int, seed: int = 0) -> MobyDataset:
    """A minimal dataset whose serialised size scales with ``n_rentals``."""
    from datetime import datetime, timedelta

    from repro.data.records import LocationRecord, RentalRecord

    locations = [
        LocationRecord(location_id=i, lat=53.3 + i * 1e-3, lon=-6.2, is_station=True, name=f"s{i}")
        for i in range(1, 4)
    ]
    start = datetime(2021, 7, 1, 8, 0, 0)
    rentals = [
        RentalRecord(
            rental_id=seed * 100_000 + i,
            bike_id=i % 7,
            started_at=start + timedelta(minutes=i),
            ended_at=start + timedelta(minutes=i + 9),
            rental_location_id=1 + (i % 3),
            return_location_id=1 + ((i + 1) % 3),
        )
        for i in range(n_rentals)
    ]
    return MobyDataset.from_records(locations, rentals)


class TestNames:
    def test_accepts_reasonable_names(self):
        for name in ("dublin", "q1-2024", "a.b_c-7", "X" * 64):
            assert check_dataset_name(name) == name

    @pytest.mark.parametrize(
        "name", ["", "../etc", "a/b", "a b", ".hidden", "-lead", "x" * 65, 7]
    )
    def test_rejects_path_hostile_names(self, name):
        with pytest.raises(ServiceError):
            check_dataset_name(name)


class TestRoundTrip:
    @pytest.mark.parametrize("disk", [False, True])
    def test_put_get_meta_delete(self, disk, tmp_path):
        store = DatasetStore(tmp_path / "ds" if disk else None)
        dataset = tiny_dataset(50)
        meta = store.put("tiny", dataset)
        assert meta["digest"] == dataset_digest(dataset)
        assert meta["n_rentals"] == 50 and meta["bytes"] > 0
        assert store.digest("tiny") == meta["digest"]
        back = store.get("tiny")
        assert dataset_digest(back) == meta["digest"]
        assert [m["name"] for m in store.list()] == ["tiny"]
        assert "tiny" in store and len(store) == 1
        assert store.delete("tiny") is True
        assert store.delete("tiny") is False
        assert store.get("tiny") is None and store.digest("tiny") is None

    def test_disk_store_is_a_csv_dataset_directory(self, tmp_path):
        """A stored dataset doubles as a ``repro run --data`` input."""
        store = DatasetStore(tmp_path)
        dataset = tiny_dataset(20)
        store.put("tiny", dataset)
        loaded = MobyDataset.from_csv(tmp_path / "tiny")
        assert dataset_digest(loaded) == dataset_digest(dataset)

    def test_restart_adopts_existing_datasets(self, tmp_path):
        first = DatasetStore(tmp_path)
        meta = first.put("persisted", tiny_dataset(30))
        second = DatasetStore(tmp_path)
        assert second.digest("persisted") == meta["digest"]
        assert dataset_digest(second.get("persisted")) == meta["digest"]

    def test_restart_ignores_partial_directories(self, tmp_path):
        (tmp_path / "broken").mkdir()
        (tmp_path / "broken" / "meta.json").write_text("{not json")
        (tmp_path / "foreign").mkdir()
        store = DatasetStore(tmp_path)
        assert len(store) == 0


class TestOverwrite:
    @pytest.mark.parametrize("disk", [False, True])
    def test_overwrite_replaces_content_and_digest(self, disk, tmp_path):
        store = DatasetStore(tmp_path / "ds" if disk else None)
        old_meta = store.put("city", tiny_dataset(10, seed=1))
        new = tiny_dataset(25, seed=2)
        new_meta = store.put("city", new)
        assert new_meta["digest"] != old_meta["digest"]
        assert new_meta["bytes"] != old_meta["bytes"]
        assert len(store) == 1
        assert dataset_digest(store.get("city")) == new_meta["digest"]


class TestCaps:
    def test_oversized_upload_rejected_store_unchanged(self, tmp_path):
        store = DatasetStore(tmp_path, max_dataset_bytes=512)
        with pytest.raises(ServiceError, match="cap"):
            store.put("big", tiny_dataset(200))
        assert len(store) == 0
        assert not (tmp_path / "big").exists()

    def test_count_cap_evicts_least_recently_used(self):
        store = DatasetStore(max_datasets=2)
        store.put("a", tiny_dataset(5, seed=1))
        store.put("b", tiny_dataset(5, seed=2))
        store.get("a")  # refresh: b is now the LRU entry
        store.put("c", tiny_dataset(5, seed=3))
        assert sorted(m["name"] for m in store.list()) == ["a", "c"]
        assert store.evictions == 1

    def test_byte_cap_evicts_until_it_fits(self, tmp_path):
        store = DatasetStore(tmp_path)
        small = tiny_dataset(10, seed=1)
        meta = store.put("first", small)
        store.max_total_bytes = meta["bytes"] * 2 + 10
        store.put("second", tiny_dataset(10, seed=2))
        store.put("third", tiny_dataset(10, seed=3))  # pushes `first` out
        assert sorted(m["name"] for m in store.list()) == ["second", "third"]
        assert not (tmp_path / "first").exists()
        assert store.total_bytes() <= store.max_total_bytes

    def test_upload_larger_than_total_cap_rejected(self):
        store = DatasetStore(max_total_bytes=64)
        with pytest.raises(ServiceError, match="capped"):
            store.put("big", tiny_dataset(100))


class TestJsonPayload:
    def test_to_dict_roundtrips_through_json(self):
        dataset = tiny_dataset(15)
        payload = json.loads(json.dumps(dataset.to_dict()))
        back = MobyDataset.from_dict(payload)
        assert dataset_digest(back) == dataset_digest(dataset)

    def test_none_cells_survive(self):
        from datetime import datetime

        from repro.data.records import LocationRecord, RentalRecord

        dataset = MobyDataset.from_records(
            [LocationRecord(location_id=1, lat=None, lon=None)],
            [
                RentalRecord(
                    rental_id=1,
                    bike_id=1,
                    started_at=datetime(2021, 7, 1),
                    ended_at=datetime(2021, 7, 1, 1),
                    rental_location_id=None,
                    return_location_id=None,
                )
            ],
        )
        back = MobyDataset.from_dict(dataset.to_dict())
        assert dataset_digest(back) == dataset_digest(dataset)

    @pytest.mark.parametrize(
        "payload",
        [
            "rows",
            {"type": "ScenarioSpec"},
            {"locations": [[1, 2]]},
            {"rentals": [[1]]},
            {"rentals": [[1, 1, "not-a-date", "2021-07-01", None, None]]},
        ],
    )
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises((TypeError, ValueError)):
            MobyDataset.from_dict(payload)


class TestServiceIntegration:
    def test_register_returns_meta_and_resolves(self, small_raw):
        with ExpansionService() as service:
            meta = service.register_dataset("small", small_raw)
            assert meta["digest"] == dataset_digest(small_raw)
            spec = ScenarioSpec(dataset=DatasetRef.named("small"))
            raw, digest = service._resolve_dataset(spec)
            assert digest == meta["digest"]

    def test_overwrite_moves_spec_fingerprints(self):
        with ExpansionService() as service:
            service.register_dataset("city", tiny_dataset(10, seed=1))
            spec = ScenarioSpec(dataset=DatasetRef.named("city"))
            _, digest_a = service._resolve_dataset(spec)
            fp_a = spec.fingerprint(digest_a)
            service.register_dataset("city", tiny_dataset(10, seed=2))
            _, digest_b = service._resolve_dataset(spec)
            assert digest_b != digest_a
            assert spec.fingerprint(digest_b) != fp_a

    def test_deleted_dataset_fails_submission(self, small_raw):
        with ExpansionService() as service:
            service.register_dataset("small", small_raw)
            assert service.delete_dataset("small") is True
            with pytest.raises(ServiceError):
                service.submit(ScenarioSpec(dataset=DatasetRef.named("small")))

    def test_healthz_counts_datasets(self, small_raw):
        with ExpansionService() as service:
            service.register_dataset("small", small_raw)
            stats = service.stats()
            assert stats["datasets"]["stored"] == 1
            assert stats["datasets"]["bytes"] > 0


class TestConcurrentOverwrite:
    @pytest.mark.parametrize("disk", [False, True])
    def test_resolved_pairs_stay_consistent_under_overwrites(self, disk, tmp_path):
        """(rows, digest) handed out while a writer hammers the name must
        always be mutually consistent — never new rows with an old
        digest, never a torn locations/rentals pair."""
        import threading

        store = DatasetStore(tmp_path / "ds" if disk else None)
        versions = [tiny_dataset(12, seed=s) for s in range(4)]
        digests = {dataset_digest(d) for d in versions}
        store.put("city", versions[0])
        stop = threading.Event()
        mismatches: list[str] = []

        def writer():
            i = 0
            while not stop.is_set():
                store.put("city", versions[i % len(versions)])
                i += 1

        def reader():
            while not stop.is_set():
                resolved = store.get_with_digest("city")
                if resolved is None:
                    continue
                rows, digest = resolved
                if digest not in digests or dataset_digest(rows) != digest:
                    mismatches.append(digest)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        threading.Event().wait(0.5)
        stop.set()
        for thread in threads:
            thread.join(30)
        assert not mismatches


class TestDatasetSweep:
    """sweep_datasets: one spec, one envelope, a dataset axis."""

    def test_spec_validation(self):
        spec = ScenarioSpec(outputs=("sweep",), sweep_datasets=("a", "b"))
        assert spec.sweep_datasets == ("a", "b")
        with pytest.raises(ServiceError, match="exactly"):
            ScenarioSpec(outputs=("run",), sweep_datasets=("a",))
        with pytest.raises(ServiceError, match="repeat"):
            ScenarioSpec(outputs=("sweep",), sweep_datasets=("a", "a"))
        with pytest.raises(ServiceError, match="dataset name"):
            ScenarioSpec(outputs=("sweep",), sweep_datasets=("../etc",))
        back = ScenarioSpec.from_dict(spec.to_dict())
        assert back == spec

    def test_fingerprint_tracks_content_not_base_ref(self):
        spec_a = ScenarioSpec(outputs=("sweep",), sweep_datasets=("a", "b"))
        spec_b = ScenarioSpec(
            dataset=DatasetRef.synthetic(99),  # ignored: no base dataset
            outputs=("sweep",),
            sweep_datasets=("a", "b"),
        )
        pairs = (("a", "x" * 64), ("b", "y" * 64))
        assert spec_a.fingerprint("", sweep_dataset_digests=pairs) == (
            spec_b.fingerprint("", sweep_dataset_digests=pairs)
        )
        moved = (("a", "x" * 64), ("b", "z" * 64))
        assert spec_a.fingerprint("", sweep_dataset_digests=pairs) != (
            spec_a.fingerprint("", sweep_dataset_digests=moved)
        )
        with pytest.raises(ServiceError, match="name-for-name"):
            spec_a.fingerprint("", sweep_dataset_digests=(("b", "q"),))

    def test_sweep_over_named_datasets_produces_one_envelope(self):
        with ExpansionService() as service:
            service.register_dataset("city-a", tiny_dataset(40, seed=1))
            service.register_dataset("city-b", tiny_dataset(40, seed=2))
            spec = ScenarioSpec(
                outputs=("sweep",), sweep_datasets=("city-a", "city-b")
            )
            envelope = service.run(spec, timeout=300)
            sweep = envelope["outputs"]["sweep"]
            assert [d["name"] for d in sweep["datasets"]] == [
                "city-a", "city-b",
            ]
            assert envelope["dataset_digests"] == {
                d["name"]: d["digest"] for d in sweep["datasets"]
            }
            assert "dataset_digest" not in envelope
            assert [s["dataset"] for s in sweep["scenarios"]] == [
                "city-a", "city-b",
            ]
            assert all(
                s["label"].startswith("dataset=") for s in sweep["scenarios"]
            )
            # Children are complete, individually addressable run
            # envelopes under the equivalent run-spec fingerprint.
            for scenario, name in zip(sweep["scenarios"], ("city-a", "city-b")):
                child = service.results.get(scenario["fingerprint"])
                assert child["spec"]["dataset"] == {
                    "kind": "named", "name": name,
                }
                assert child["outputs"]["run"]["headline"] == (
                    scenario["headline"]
                )
            # Resubmission is served from the results store, no compute.
            executions = service.pipeline_executions
            assert service.run(spec, timeout=300) == envelope
            assert service.pipeline_executions == executions

    def test_dataset_axis_crosses_config_axes(self):
        with ExpansionService() as service:
            service.register_dataset("city-a", tiny_dataset(40, seed=1))
            service.register_dataset("city-b", tiny_dataset(40, seed=2))
            envelope = service.run(
                ScenarioSpec(
                    outputs=("sweep",),
                    sweep_axes={"temporal.coupling": [0.05, 0.25]},
                    sweep_datasets=("city-a", "city-b"),
                ),
                timeout=300,
            )
            scenarios = envelope["outputs"]["sweep"]["scenarios"]
            assert len(scenarios) == 4  # 2 datasets x 2 coupling values
            assert {
                (s["dataset"], s["overrides"]["temporal.coupling"])
                for s in scenarios
            } == {
                ("city-a", 0.05), ("city-a", 0.25),
                ("city-b", 0.05), ("city-b", 0.25),
            }

    def test_overwriting_a_swept_dataset_moves_the_fingerprint(self):
        with ExpansionService() as service:
            service.register_dataset("city", tiny_dataset(30, seed=1))
            spec = ScenarioSpec(outputs=("sweep",), sweep_datasets=("city",))
            first = service.submit(spec)
            first.wait(timeout=300)
            service.register_dataset("city", tiny_dataset(30, seed=2))
            second = service.submit(spec)
            second.wait(timeout=300)
            assert first.fingerprint != second.fingerprint

    def test_unknown_swept_dataset_rejected_at_submit(self):
        with ExpansionService() as service:
            with pytest.raises(ServiceError, match="nope"):
                service.submit(
                    ScenarioSpec(outputs=("sweep",), sweep_datasets=("nope",))
                )
