"""Tests for Louvain, modularity and Partition, with networkx oracles."""

import networkx as nx
import pytest

from repro.community import Partition, louvain, modularity
from repro.config import CommunityConfig
from repro.exceptions import CommunityError
from repro.graphdb import WeightedGraph


def two_cliques(k: int = 5, bridge_weight: float = 0.5) -> WeightedGraph:
    graph = WeightedGraph()
    for offset in (0, k):
        for i in range(k):
            for j in range(i + 1, k):
                graph.add_edge(offset + i, offset + j, 1.0)
    graph.add_edge(0, k, bridge_weight)
    return graph


def to_networkx(graph: WeightedGraph) -> nx.Graph:
    nxg = nx.Graph()
    nxg.add_nodes_from(graph.nodes())
    for u, v, w in graph.edges():
        nxg.add_edge(u, v, weight=w)
    return nxg


class TestPartition:
    def test_normalised_labels_by_size(self):
        partition = Partition.from_assignment(
            {"a": 9, "b": 9, "c": 9, "d": 4, "e": 4, "f": 1}
        )
        assert partition["a"] == 1
        assert partition["d"] == 2
        assert partition["f"] == 3
        assert partition.n_communities == 3

    def test_sizes_and_communities(self):
        partition = Partition.from_assignment({"a": 0, "b": 0, "c": 1})
        assert partition.sizes() == {1: 2, 2: 1}
        assert partition.communities()[1] == {"a", "b"}

    def test_from_communities(self):
        partition = Partition.from_communities([["a", "b"], ["c"]])
        assert partition["a"] == partition["b"] != partition["c"]

    def test_overlapping_communities_rejected(self):
        with pytest.raises(CommunityError):
            Partition.from_communities([["a"], ["a", "b"]])

    def test_empty_rejected(self):
        with pytest.raises(CommunityError):
            Partition.from_assignment({})

    def test_restricted_to(self):
        partition = Partition.from_assignment({"a": 0, "b": 0, "c": 1, "d": 2})
        restricted = partition.restricted_to(["a", "c"])
        assert len(restricted) == 2
        assert restricted.n_communities == 2

    def test_labels(self):
        partition = Partition.from_assignment({"a": 5, "b": 7})
        assert partition.labels() == [1, 2]


class TestModularity:
    def test_matches_networkx_on_random_graphs(self):
        for seed in range(4):
            nxg = nx.gnm_random_graph(24, 60, seed=seed)
            for index, (u, v) in enumerate(nxg.edges()):
                nxg[u][v]["weight"] = 1.0 + (index % 5)
            graph = WeightedGraph()
            graph.add_node(0)
            for u, v, data in nxg.edges(data=True):
                graph.add_edge(u, v, data["weight"])
            for node in nxg.nodes():
                graph.add_node(node)
            assignment = {node: node % 3 for node in nxg.nodes()}
            ours = modularity(graph, Partition.from_assignment(assignment))
            groups = [
                {n for n in nxg.nodes() if n % 3 == label} for label in range(3)
            ]
            theirs = nx.algorithms.community.modularity(nxg, groups)
            assert ours == pytest.approx(theirs, abs=1e-12)

    def test_matches_networkx_with_self_loops(self):
        nxg = nx.Graph()
        nxg.add_weighted_edges_from([(0, 1, 2.0), (1, 2, 1.0), (2, 2, 3.0)])
        graph = WeightedGraph.from_edges([(0, 1, 2.0), (1, 2, 1.0), (2, 2, 3.0)])
        partition = Partition.from_assignment({0: 0, 1: 0, 2: 1})
        theirs = nx.algorithms.community.modularity(nxg, [{0, 1}, {2}])
        assert modularity(graph, partition) == pytest.approx(theirs, abs=1e-12)

    def test_single_community_score(self):
        graph = two_cliques()
        nodes = list(graph.nodes())
        partition = Partition.from_assignment({node: 0 for node in nodes})
        assert modularity(graph, partition) == pytest.approx(0.0, abs=1e-12)

    def test_resolution_shifts_score(self):
        graph = two_cliques()
        partition = Partition.from_assignment(
            {node: (0 if node < 5 else 1) for node in graph.nodes()}
        )
        base = modularity(graph, partition, resolution=1.0)
        high = modularity(graph, partition, resolution=2.0)
        assert high < base

    def test_unassigned_node_raises(self):
        graph = two_cliques()
        partition = Partition.from_assignment({0: 0})
        with pytest.raises(CommunityError):
            modularity(graph, partition)

    def test_empty_graph_scores_zero(self):
        graph = WeightedGraph()
        graph.add_node("a")
        partition = Partition.from_assignment({"a": 0})
        assert modularity(graph, partition) == 0.0


class TestLouvain:
    def test_two_cliques_found(self):
        result = louvain(two_cliques(), CommunityConfig(seed=1))
        assert result.n_communities == 2
        left = {result.partition[i] for i in range(5)}
        right = {result.partition[i] for i in range(5, 10)}
        assert len(left) == 1 and len(right) == 1 and left != right

    def test_modularity_reported_matches_recomputation(self):
        graph = two_cliques()
        result = louvain(graph)
        assert result.modularity == pytest.approx(
            modularity(graph, result.partition)
        )

    def test_deterministic_given_seed(self):
        graph = two_cliques(k=6)
        a = louvain(graph, CommunityConfig(seed=3))
        b = louvain(graph, CommunityConfig(seed=3))
        assert a.partition.assignment == b.partition.assignment

    def test_quality_close_to_networkx(self):
        for seed in range(3):
            nxg = nx.planted_partition_graph(4, 12, 0.8, 0.05, seed=seed)
            graph = WeightedGraph()
            for node in nxg.nodes():
                graph.add_node(node)
            for u, v in nxg.edges():
                graph.add_edge(u, v, 1.0)
            ours = louvain(graph, CommunityConfig(seed=seed)).modularity
            theirs = nx.algorithms.community.modularity(
                nxg, nx.algorithms.community.louvain_communities(nxg, seed=seed)
            )
            assert ours >= theirs - 0.05

    def test_planted_partition_recovered(self):
        nxg = nx.planted_partition_graph(3, 16, 0.9, 0.02, seed=11)
        graph = WeightedGraph()
        for u, v in nxg.edges():
            graph.add_edge(u, v, 1.0)
        result = louvain(graph, CommunityConfig(seed=11))
        assert result.n_communities == 3
        for block in range(3):
            labels = {
                result.partition[node]
                for node in range(block * 16, (block + 1) * 16)
                if node in result.partition
            }
            assert len(labels) == 1

    def test_levels_hierarchy(self):
        result = louvain(two_cliques(k=6), CommunityConfig(seed=2))
        assert len(result.levels) >= 1
        assert result.levels[-1].assignment == result.partition.assignment

    def test_weighted_edges_matter(self):
        # A strong bridge merges the cliques.
        merged = louvain(two_cliques(bridge_weight=200.0), CommunityConfig(seed=1))
        assert merged.n_communities < 2 or merged.partition[0] == merged.partition[5]

    def test_zero_weight_graph_rejected(self):
        graph = WeightedGraph()
        graph.add_node("a")
        with pytest.raises(CommunityError):
            louvain(graph)
