"""Tests for typed records, CSV IO and the MobyDataset wrapper."""

from datetime import datetime

import pytest

from repro.data import (
    LocationRecord,
    MobyDataset,
    RentalRecord,
    read_locations,
    read_rentals,
    write_locations,
    write_rentals,
)


def sample_location(location_id=1, **kwargs) -> LocationRecord:
    defaults = dict(lat=53.34, lon=-6.26, is_station=False, name="")
    defaults.update(kwargs)
    return LocationRecord(location_id, **defaults)


def sample_rental(rental_id=1, **kwargs) -> RentalRecord:
    defaults = dict(
        bike_id=3,
        started_at=datetime(2020, 7, 4, 14, 30, 5),
        ended_at=datetime(2020, 7, 4, 14, 55, 0),
        rental_location_id=1,
        return_location_id=2,
    )
    defaults.update(kwargs)
    return RentalRecord(rental_id, **defaults)


class TestRecords:
    def test_location_point(self):
        record = sample_location()
        assert record.point().lat == 53.34

    def test_location_without_coords(self):
        record = sample_location(lat=None, lon=None)
        assert not record.has_coordinates
        with pytest.raises(TypeError):
            record.point()

    def test_partial_coords_counts_as_missing(self):
        assert not sample_location(lon=None).has_coordinates

    def test_rental_duration(self):
        assert sample_rental().duration_minutes == pytest.approx(24.9167, abs=1e-3)

    def test_rental_day_of_week(self):
        # 2020-07-04 was a Saturday.
        assert sample_rental().day_of_week == 5

    def test_rental_hour(self):
        assert sample_rental().hour_of_day == 14

    def test_rental_missing_ids(self):
        assert not sample_rental(rental_location_id=None).has_location_ids
        assert sample_rental().has_location_ids


class TestCsvRoundTrip:
    def test_locations_roundtrip(self, tmp_path):
        records = [
            sample_location(1, is_station=True, name="Station A"),
            sample_location(2, lat=None, lon=None),
            sample_location(3, lat=-10.5, lon=120.25, name="odd, name"),
        ]
        path = tmp_path / "locations.csv"
        assert write_locations(path, records) == 3
        loaded = read_locations(path)
        assert loaded == records

    def test_rentals_roundtrip(self, tmp_path):
        records = [
            sample_rental(1),
            sample_rental(2, rental_location_id=None, return_location_id=None),
        ]
        path = tmp_path / "rentals.csv"
        assert write_rentals(path, records) == 2
        assert read_rentals(path) == records

    def test_dataset_roundtrip(self, tmp_path):
        dataset = MobyDataset.from_records(
            [sample_location(1), sample_location(2)], [sample_rental(1)]
        )
        dataset.to_csv(tmp_path / "out")
        loaded = MobyDataset.from_csv(tmp_path / "out")
        assert loaded.n_locations == 2
        assert loaded.n_rentals == 1
        assert loaded.rental(1) == dataset.rental(1)


class TestMobyDataset:
    def _dataset(self) -> MobyDataset:
        return MobyDataset.from_records(
            [
                sample_location(1, is_station=True, name="S"),
                sample_location(2),
                sample_location(3),
            ],
            [sample_rental(1), sample_rental(2, rental_location_id=3)],
        )

    def test_counts(self):
        dataset = self._dataset()
        assert dataset.n_locations == 3
        assert dataset.n_stations == 1
        assert dataset.n_rentals == 2

    def test_stations_iterator(self):
        stations = list(self._dataset().stations())
        assert [s.location_id for s in stations] == [1]

    def test_rentals_touching_location(self):
        dataset = self._dataset()
        assert dataset.rentals_touching_location(1) == {1}
        assert dataset.rentals_touching_location(2) == {1, 2}
        assert dataset.rentals_touching_location(3) == {2}

    def test_referenced_location_ids(self):
        assert self._dataset().referenced_location_ids() == {1, 2, 3}

    def test_remove_cascade_manual(self):
        dataset = self._dataset()
        dataset.remove_rental(2)
        dataset.remove_location(3)
        assert dataset.n_rentals == 1
        assert dataset.n_locations == 2

    def test_summary(self):
        summary = self._dataset().summary()
        assert summary.as_row() == {
            "#stations": 1, "#rental": 2, "#location": 3
        }

    def test_has_location(self):
        dataset = self._dataset()
        assert dataset.has_location(1)
        assert not dataset.has_location(99)
