"""Coverage for small helpers not exercised elsewhere."""

import pytest

from repro.core import Station, check_pairwise_distance
from repro.geo import GeoPoint, LANDMARKS, bearing_deg, destination_point, haversine_m
from repro.synth import REGION_CENTRAL, build_dublin_zones, region_weights

CENTER = GeoPoint(53.3473, -6.2591)


class TestCheckPairwiseDistance:
    def test_no_violations_when_spread(self):
        points = [
            destination_point(CENTER, bearing, 1_000.0)
            for bearing in (0.0, 120.0, 240.0)
        ]
        assert check_pairwise_distance(points, 250.0) == []

    def test_violations_reported_with_distance(self):
        points = [CENTER, destination_point(CENTER, 0.0, 100.0)]
        violations = check_pairwise_distance(points, 250.0)
        assert len(violations) == 1
        i, j, distance = violations[0]
        assert (i, j) == (0, 1)
        assert distance == pytest.approx(100.0, abs=0.5)

    def test_empty_and_single(self):
        assert check_pairwise_distance([], 100.0) == []
        assert check_pairwise_distance([CENTER], 100.0) == []


class TestStationDataclass:
    def test_is_new(self):
        fixed = Station(1, CENTER, "fixed", "A")
        selected = Station(2, CENTER, "selected", "B", source_cluster_id=9)
        assert not fixed.is_new
        assert selected.is_new
        assert selected.source_cluster_id == 9


class TestDublinGeography:
    def test_landmark_distances_sane(self):
        # Phoenix Park is 4-6 km from the centre; Dún Laoghaire 10-13 km.
        centre = LANDMARKS["city_center"]
        assert 3_000 < haversine_m(centre, LANDMARKS["phoenix_park"]) < 7_000
        assert 9_000 < haversine_m(centre, LANDMARKS["dun_laoghaire"]) < 14_000

    def test_dun_laoghaire_southeast_of_centre(self):
        bearing = bearing_deg(
            LANDMARKS["city_center"], LANDMARKS["dun_laoghaire"]
        )
        assert 120.0 < bearing < 180.0

    def test_phoenix_park_west_of_centre(self):
        bearing = bearing_deg(
            LANDMARKS["city_center"], LANDMARKS["phoenix_park"]
        )
        assert 270.0 < bearing < 330.0


class TestZoneGeometry:
    def test_central_zones_near_centre(self):
        centre = LANDMARKS["city_center"]
        for zone in build_dublin_zones():
            distance = haversine_m(centre, zone.center)
            if zone.region == REGION_CENTRAL:
                assert distance < 5_000, zone.name
            assert distance < 15_000, zone.name

    def test_region_weights_ordering(self):
        weights = region_weights(build_dublin_zones())
        # Paper: the green (central) community carries the most trips.
        assert weights["central"] > weights["south"] >= weights["suburban"]
