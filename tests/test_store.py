"""repro.store: backends, namespaces, quotas, and format stability.

The fixture files under ``tests/goldens/store_format/`` were written
by the pre-unification implementations (StageCache pickles, ResultsStore
envelopes, DatasetStore CSV pairs).  The byte-compatibility tests pin
the refactored adapters to those exact on-disk formats — an existing
cache/results/datasets directory must keep working, byte for byte.
"""

import json
import pickle
from pathlib import Path

import pytest

from repro.exceptions import StoreError, StoreKeyError, StoreQuotaError
from repro.pipeline.cache import MISS, StageCache
from repro.service.datasets import DatasetStore
from repro.service.store import ResultsStore
from repro.store import (
    DirBackend,
    MemoryBackend,
    Namespace,
    ObjectLRU,
    ShardedDirBackend,
    Store,
    make_backend,
)

FIXTURES = Path(__file__).parent / "goldens" / "store_format"


def backends(tmp_path):
    return {
        "memory": MemoryBackend(),
        "dir": DirBackend(tmp_path / "dir"),
        "sharded": ShardedDirBackend(tmp_path / "sharded"),
    }


class TestBackends:
    @pytest.mark.parametrize("kind", ["memory", "dir", "sharded"])
    def test_roundtrip_list_stat_delete(self, kind, tmp_path):
        backend = backends(tmp_path)[kind]
        assert backend.get("missing.bin") is None
        assert backend.stat("missing.bin") is None
        backend.put("a.bin", b"alpha")
        backend.put("nested/b.bin", b"beta")
        assert backend.get("a.bin") == b"alpha"
        assert backend.peek("nested/b.bin") == b"beta"
        assert sorted(backend.list()) == ["a.bin", "nested/b.bin"]
        assert backend.stat("a.bin").size == 5
        assert backend.delete("a.bin") is True
        assert backend.delete("a.bin") is False
        assert sorted(backend.list()) == ["nested/b.bin"]

    @pytest.mark.parametrize("kind", ["memory", "dir", "sharded"])
    def test_get_refreshes_recency_peek_does_not(self, kind, tmp_path):
        backend = backends(tmp_path)[kind]
        backend.put("k", b"v")
        before = backend.stat("k").accessed
        if kind != "memory":
            import os
            import time

            past = time.time() - 3600
            os.utime(next(iter([backend._path("k")])), (past, past))
            before = backend.stat("k").accessed
        backend.peek("k")
        assert backend.stat("k").accessed == before
        backend.get("k")
        assert backend.stat("k").accessed > before

    @pytest.mark.parametrize("kind", ["dir", "sharded"])
    def test_open_write_is_atomic_on_error(self, kind, tmp_path):
        backend = backends(tmp_path)[kind]
        backend.put("k.bin", b"old")
        with pytest.raises(RuntimeError):
            with backend.open_write("k.bin") as handle:
                handle.write(b"partial")
                raise RuntimeError("crash mid-write")
        assert backend.get("k.bin") == b"old"
        assert sorted(backend.list()) == ["k.bin"]  # no tmp litter listed

    def test_sharded_parity_same_keys_same_bytes(self, tmp_path):
        """Same keys, same contents — only the directory layout differs."""
        flat = DirBackend(tmp_path / "flat")
        sharded = ShardedDirBackend(tmp_path / "shard")
        keys = [f"{i:02x}" * 8 + ".pkl" for i in range(24)] + ["name/meta.json"]
        for key in keys:
            flat.put(key, key.encode())
            sharded.put(key, key.encode())
        assert sorted(flat.list()) == sorted(sharded.list())
        for key in keys:
            assert flat.get(key) == sharded.get(key)
        # The fan-out genuinely happened: top level is shard dirs, and a
        # multi-part entry's files stay colocated in one shard.
        top = {p.name for p in (tmp_path / "shard").iterdir()}
        assert top != {k.split("/")[0] for k in keys}
        assert all(len(name) == 2 for name in top)

    def test_make_backend_rejects_unknown_kind(self, tmp_path):
        with pytest.raises(StoreError):
            make_backend("bogus", tmp_path)
        with pytest.raises(StoreError):
            make_backend("dir", None)


class TestNamespaceKeys:
    def test_hex_validation_rejects_path_hostile_keys(self):
        namespace = Namespace(MemoryBackend(), key_label="result fingerprint")
        for bad in ("", "NOT-HEX", "../escape", "a/b", "a.pkl"):
            with pytest.raises(StoreKeyError):
                namespace.get(bad)
        # StoreKeyError doubles as ValueError for pre-existing catches.
        with pytest.raises(ValueError):
            namespace.put("..", b"x")

    def test_suffix_encoding_and_foreign_files_ignored(self, tmp_path):
        backend = DirBackend(tmp_path)
        namespace = Namespace(backend, suffix=".json")
        namespace.put("abc123", b"{}")
        assert (tmp_path / "abc123.json").read_bytes() == b"{}"
        (tmp_path / "foreign.txt").write_bytes(b"x")
        (tmp_path / "UPPER.json").write_bytes(b"x")
        assert namespace.keys() == ["abc123"]
        assert namespace.entries() == 1


class TestNamespaceQuotas:
    def test_lru_eviction_by_entries_keeps_recently_used(self):
        namespace = Namespace(MemoryBackend(), max_entries=2)
        namespace.put("aa", b"1")
        namespace.put("bb", b"2")
        namespace.get("aa")  # refresh: bb is now least recent
        namespace.put("cc", b"3")
        assert namespace.keys() == ["aa", "cc"]
        assert namespace.evictions == 1

    def test_byte_quota_never_evicts_just_written(self):
        namespace = Namespace(MemoryBackend(), max_bytes=0)
        namespace.put("aa", b"xxxx")
        namespace.put("bb", b"yyyy")
        assert namespace.keys() == ["bb"]

    def test_oversize_rejection_leaves_store_unchanged(self):
        namespace = Namespace(
            MemoryBackend(),
            max_entry_bytes=4,
            max_bytes=16,
            reject_oversize=True,
        )
        with pytest.raises(StoreQuotaError, match="cap"):
            namespace.put("aa", b"toolarge")
        with pytest.raises(StoreQuotaError, match="capped"):
            namespace.max_entry_bytes = None
            namespace.put("aa", b"x" * 32)
        assert namespace.keys() == []

    def test_recency_survives_restart_on_disk(self, tmp_path):
        import os
        import time

        first = Namespace(DirBackend(tmp_path), max_entries=2)
        first.put("aa", b"1")
        past = time.time() - 3600
        os.utime(tmp_path / "aa", (past, past))
        first.put("bb", b"2")
        os.utime(tmp_path / "bb", (past + 1, past + 1))
        first.get("aa")  # refreshed mtime persists on disk
        second = Namespace(DirBackend(tmp_path), max_entries=2)
        second.put("cc", b"3")
        assert second.keys() == ["aa", "cc"]


class TestNamespaceParts:
    def make(self, backend, **kwargs):
        from repro.store import NAME_KEY

        return Namespace(
            backend,
            key_pattern=NAME_KEY,
            parts=("data.csv", "meta.json"),
            accounted_parts=("data.csv",),
            **kwargs,
        )

    def test_entry_roundtrip_and_anchor_semantics(self, tmp_path):
        namespace = self.make(DirBackend(tmp_path))
        namespace.put_entry("one", {"data.csv": b"rows", "meta.json": b"{}"})
        assert namespace.get_part("one", "data.csv") == b"rows"
        assert namespace.keys() == ["one"]
        # An entry without its anchor is invisible (torn write).
        (tmp_path / "torn").mkdir()
        (tmp_path / "torn" / "data.csv").write_bytes(b"rows")
        assert namespace.keys() == ["one"]
        assert namespace.delete("one") is True
        assert namespace.keys() == []

    def test_accounting_counts_only_accounted_parts(self):
        namespace = self.make(MemoryBackend())
        namespace.put_entry(
            "one", {"data.csv": b"12345678", "meta.json": b"{" + b"x" * 100 + b"}"}
        )
        assert namespace.total_bytes() == 8
        assert namespace.entry_bytes("one") == 8


class TestObjectLRU:
    def test_bounded_and_recency_ordered(self):
        lru = ObjectLRU(2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1
        lru.put("c", 3)
        assert sorted(lru) == ["a", "c"]
        assert lru.get("b") is None

    def test_zero_slots_disables_retention(self):
        lru = ObjectLRU(0)
        lru.put("a", 1)
        assert len(lru) == 0 and lru.get("a") is None


class TestStoreFactory:
    def test_namespaced_backends_and_specs(self, tmp_path):
        store = Store(tmp_path, "sharded")
        backend = store.backend("stage")
        backend.put("abcd.pkl", b"x")
        assert (tmp_path / "stage").is_dir()
        assert store.spec("stage") == ("sharded", str(tmp_path / "stage"))
        assert Store().spec("stage") is None
        with pytest.raises(StoreError):
            Store(tmp_path / "other", "bogus")
        with pytest.raises(StoreError):
            Store(None, "sharded")

    def test_tree_remembers_its_backend_kind(self, tmp_path):
        """Reopening a store without --store-backend adopts the layout
        it was created with instead of silently bifurcating the tree."""
        Store(tmp_path, "sharded")
        reopened = Store(tmp_path)  # no kind given
        assert reopened.backend_kind == "sharded"
        with pytest.raises(StoreError, match="created with the 'sharded'"):
            Store(tmp_path, "dir")
        # A fresh tree defaults to the flat layout and records it.
        plain = Store(tmp_path / "fresh")
        assert plain.backend_kind == "dir"
        assert Store(tmp_path / "fresh").backend_kind == "dir"


class TestFormatStability:
    """The refactored adapters read and write the historical bytes."""

    STAGE_KEY = "ab" * 32
    STAGE_VALUE = {
        "table": [1, 2, 3],
        "name": "fixture",
        "nested": {"pi": 3.25, "flags": [True, False, None]},
    }
    RESULT_FP = "cd" * 32
    RESULT_ENVELOPE = {
        "type": "ResultEnvelope",
        "envelope_version": 2,
        "fingerprint": RESULT_FP,
        "outputs": {"run": {"headline": {"stations": 95, "modularity": 0.51}}},
        "spec": {"dataset": {"kind": "synthetic", "seed": 7}},
    }

    def test_stage_cache_reads_and_writes_fixture_bytes(self, tmp_path):
        fixture = FIXTURES / "stage" / f"{self.STAGE_KEY}.pkl"
        # Reads entries written by the old implementation...
        cache = StageCache(FIXTURES / "stage", memory_slots=0)
        assert cache.get(self.STAGE_KEY) == self.STAGE_VALUE
        # ...and writes byte-identical ones.
        fresh = StageCache(tmp_path)
        fresh.put(self.STAGE_KEY, self.STAGE_VALUE)
        written = (tmp_path / f"{self.STAGE_KEY}.pkl").read_bytes()
        assert written == fixture.read_bytes()
        assert pickle.loads(written) == self.STAGE_VALUE

    def test_results_store_reads_and_writes_fixture_bytes(self, tmp_path):
        fixture = FIXTURES / "results" / f"{self.RESULT_FP}.json"
        store = ResultsStore(FIXTURES / "results")
        assert store.raw(self.RESULT_FP) == fixture.read_text()
        assert store.get(self.RESULT_FP) == self.RESULT_ENVELOPE
        fresh = ResultsStore(tmp_path)
        fresh.put(self.RESULT_FP, self.RESULT_ENVELOPE)
        assert (
            tmp_path / f"{self.RESULT_FP}.json"
        ).read_bytes() == fixture.read_bytes()

    def test_dataset_store_adopts_and_rewrites_fixture_csvs(self, tmp_path):
        from repro.pipeline.fingerprint import dataset_digest

        fixture_dir = FIXTURES / "datasets" / "tiny"
        fixture_meta = json.loads((fixture_dir / "meta.json").read_text())
        store = DatasetStore(FIXTURES / "datasets")
        dataset = store.get("tiny")
        assert dataset_digest(dataset) == fixture_meta["digest"]
        fresh = DatasetStore(tmp_path)
        meta = fresh.put("tiny", dataset)
        assert meta["digest"] == fixture_meta["digest"]
        assert meta["bytes"] == fixture_meta["bytes"]
        for name in ("locations.csv", "rentals.csv"):
            assert (
                tmp_path / "tiny" / name
            ).read_bytes() == (fixture_dir / name).read_bytes()

    def test_sharded_stage_cache_holds_identical_pickle_bytes(self, tmp_path):
        flat = StageCache(namespace=None, memory_slots=0)
        sharded = StageCache.from_spec(("sharded", str(tmp_path)))
        sharded.put(self.STAGE_KEY, self.STAGE_VALUE)
        files = [p for p in tmp_path.rglob("*.pkl")]
        assert len(files) == 1
        assert files[0].parent != tmp_path  # it landed inside a shard dir
        assert files[0].read_bytes() == (
            FIXTURES / "stage" / f"{self.STAGE_KEY}.pkl"
        ).read_bytes()
        assert sharded.get(self.STAGE_KEY) == self.STAGE_VALUE
        assert flat.get(self.STAGE_KEY) is MISS


class TestEvictionSafety:
    def test_locked_entries_are_not_eviction_victims(self):
        """An entry whose per-key lock is held mid-write must be skipped."""
        from repro.store import NAME_KEY

        namespace = Namespace(
            MemoryBackend(), key_pattern=NAME_KEY, max_entries=1
        )
        namespace.put("victim", b"old")
        lock = namespace.lock("victim")
        lock.acquire()  # simulate an in-progress writer/reader
        try:
            namespace.put("fresh", b"new")
            # Over quota, but the locked entry was not torn down.
            assert namespace.keys() == ["fresh", "victim"]
            assert namespace.evictions == 0
        finally:
            lock.release()
        namespace.put("later", b"x")
        assert "victim" not in namespace.keys()

    def test_crashed_overwrite_reads_as_absent_not_mixed(self):
        """A crash between part writes must never pair old and new parts."""
        from repro.store import NAME_KEY

        backend = MemoryBackend()
        namespace = Namespace(
            backend,
            key_pattern=NAME_KEY,
            parts=("data.csv", "meta.json"),
        )
        namespace.put_entry("one", {"data.csv": b"v1", "meta.json": b"m1"})

        real_put = backend.put
        calls = {"n": 0}

        def crashing_put(key, data):
            calls["n"] += 1
            if calls["n"] > 1:
                raise OSError("disk died mid-overwrite")
            real_put(key, data)

        backend.put = crashing_put
        with pytest.raises(OSError):
            namespace.put_entry(
                "one", {"data.csv": b"v2", "meta.json": b"m2"}
            )
        backend.put = real_put
        # New data landed but the old anchor was invalidated first: the
        # entry is absent, never "new rows under the old metadata".
        assert namespace.keys() == []
        assert namespace.get_part("one", "meta.json") is None
        # Re-uploading restores a fully consistent entry.
        namespace.put_entry("one", {"data.csv": b"v3", "meta.json": b"m3"})
        assert namespace.get_part("one", "data.csv") == b"v3"


class TestServiceWiring:
    def test_memory_store_has_no_durable_stage_tier(self):
        """A memory backend must not duplicate stage values as pickles."""
        from repro.service import ExpansionService

        with ExpansionService(store_backend="memory") as service:
            assert service.cache.namespace is None
            assert "stage" not in service.stats()["store"]
            assert service.stats()["store"]["backend"] == "memory"
