"""HTTP conformance battery: validators, framing, keep-alive, warm bytes.

Exercises the front-end's protocol contract rather than its payloads:
strong ``ETag``/``Last-Modified`` validators with correct conditional
semantics (304s), ``HEAD`` answering with exactly its ``GET``'s
headers, an exact ``Content-Length`` on every response (error paths
included — a missing one silently kills keep-alive), many requests
over one connection, and the byte-cache invariant that a warm response
is byte-identical to the cold one it memoised.

Runs on every storage backend via ``REPRO_TEST_STORE_BACKEND`` (the CI
matrix), like ``test_service_http.py``.
"""

import http.client
import json
import os
import threading
import time

import pytest

from repro.service import ExpansionService, make_server

#: Response headers legitimately allowed to differ between two
#: otherwise-identical exchanges (each request mints its own trace id).
_VOLATILE_HEADERS = {"date", "x-repro-trace-id"}


def build_service(tmp_path_factory, **kwargs):
    """An :class:`ExpansionService` honouring the CI backend matrix."""
    backend = os.environ.get("REPRO_TEST_STORE_BACKEND")
    if backend:
        return ExpansionService(
            store_dir=(
                None
                if backend == "memory"
                else tmp_path_factory.mktemp("conformance-store")
            ),
            store_backend=backend,
            **kwargs,
        )
    return ExpansionService(
        cache_dir=tmp_path_factory.mktemp("conformance-stage-cache"), **kwargs
    )


@pytest.fixture(scope="module")
def server(small_raw, tmp_path_factory):
    service = build_service(tmp_path_factory, max_workers=4)
    service.register_dataset("small", small_raw)
    http_server = make_server(service, port=0).start_background()
    yield http_server
    http_server.stop()
    service.close()


@pytest.fixture(scope="module")
def fingerprint(server, small_raw):
    """A stored result to serve warm (and its envelope bytes)."""
    status, headers, body = exchange(
        server, "POST", "/v1/runs",
        body={"dataset": {"kind": "named", "name": "small"}},
    )
    assert status == 200
    return json.loads(body)["fingerprint"]


def exchange(server, method, path, *, headers=None, body=None, conn=None):
    """(status, headers, bytes) for one exchange, errors included.

    Uses :mod:`http.client` (not urllib) so the connection — and with
    it keep-alive behaviour — is under the test's control.  Passing
    ``conn`` reuses an open connection.
    """
    own = conn is None
    if own:
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=60)
    data = json.dumps(body).encode() if body is not None else None
    conn.request(method, path, body=data, headers=headers or {})
    response = conn.getresponse()
    payload = response.read()
    result = (response.status, dict(response.getheaders()), payload)
    if own:
        conn.close()
    return result


def header(headers, name):
    for key, value in headers.items():
        if key.lower() == name.lower():
            return value
    return None


class TestConditionalResults:
    def test_result_carries_strong_validators(self, server, fingerprint):
        status, headers, _ = exchange(
            server, "GET", f"/v1/results/{fingerprint}"
        )
        assert status == 200
        assert header(headers, "ETag") == f'"{fingerprint}"'
        assert header(headers, "Last-Modified") is not None

    def test_if_none_match_yields_empty_304(self, server, fingerprint):
        _, headers, body = exchange(
            server, "GET", f"/v1/results/{fingerprint}"
        )
        status, headers, body = exchange(
            server, "GET", f"/v1/results/{fingerprint}",
            headers={"If-None-Match": header(headers, "ETag")},
        )
        assert status == 304
        assert body == b""
        assert header(headers, "Content-Length") == "0"
        # The 304 still carries the validators it matched against.
        assert header(headers, "ETag") == f'"{fingerprint}"'

    def test_fresh_if_modified_since_yields_304(self, server, fingerprint):
        _, headers, _ = exchange(
            server, "GET", f"/v1/results/{fingerprint}"
        )
        status, _, body = exchange(
            server, "GET", f"/v1/results/{fingerprint}",
            headers={"If-Modified-Since": header(headers, "Last-Modified")},
        )
        assert status == 304
        assert body == b""

    def test_stale_validators_yield_full_200(self, server, fingerprint):
        status, _, body = exchange(
            server, "GET", f"/v1/results/{fingerprint}",
            headers={"If-None-Match": '"0000beef"'},
        )
        assert status == 200
        assert json.loads(body)["fingerprint"] == fingerprint
        status, _, body = exchange(
            server, "GET", f"/v1/results/{fingerprint}",
            headers={"If-Modified-Since": "Thu, 01 Jan 1970 00:00:00 GMT"},
        )
        assert status == 200
        assert body != b""

    def test_if_none_match_wins_over_if_modified_since(
        self, server, fingerprint
    ):
        # RFC 9110: a present If-None-Match is evaluated INSTEAD of
        # If-Modified-Since — a non-matching tag means 200 even when
        # the modification date would say 304.
        _, headers, _ = exchange(
            server, "GET", f"/v1/results/{fingerprint}"
        )
        status, _, _ = exchange(
            server, "GET", f"/v1/results/{fingerprint}",
            headers={
                "If-None-Match": '"0000beef"',
                "If-Modified-Since": header(headers, "Last-Modified"),
            },
        )
        assert status == 200

    def test_narrowed_views_revalidate_too(self, server, fingerprint):
        for view in ("?fields=headline", "?section=outputs.run.headline"):
            path = f"/v1/results/{fingerprint}{view}"
            status, headers, _ = exchange(server, "GET", path)
            assert status == 200
            etag = header(headers, "ETag")
            assert etag == f'"{fingerprint}"'
            status, _, body = exchange(
                server, "GET", path, headers={"If-None-Match": etag}
            )
            assert (status, body) == (304, b"")


class TestConditionalDatasets:
    def test_dataset_repush_moves_etag_and_revalidation(
        self, server, small_raw
    ):
        status, headers, _ = exchange(server, "GET", "/v1/datasets/small")
        assert status == 200
        old_etag = header(headers, "ETag")
        assert old_etag
        status, _, _ = exchange(
            server, "GET", "/v1/datasets/small",
            headers={"If-None-Match": old_etag},
        )
        assert status == 304
        # Re-push different content: digest — and with it the ETag —
        # must move, and the old tag must stop validating.
        altered = small_raw.to_dict()
        altered["rentals"] = altered["rentals"][:-1]
        status, _, _ = exchange(
            server, "PUT", "/v1/datasets/small", body=altered
        )
        assert status == 200
        status, headers, body = exchange(
            server, "GET", "/v1/datasets/small",
            headers={"If-None-Match": old_etag},
        )
        assert status == 200
        new_etag = header(headers, "ETag")
        assert new_etag != old_etag
        assert json.loads(body)["digest"] == new_etag.strip('"')


class TestHead:
    def paths(self, fingerprint):
        return [
            "/v1/healthz",
            "/v1/jobs",
            "/v1/datasets",
            "/v1/datasets/small",
            f"/v1/results/{fingerprint}",
            f"/v1/results/{fingerprint}?fields=headline",
            "/v1/results/0000beef",  # 404 path
            "/v1/nope",  # unrouted 404
        ]

    def test_head_matches_get_headers_with_empty_body(
        self, server, fingerprint
    ):
        for path in self.paths(fingerprint):
            get_status, get_headers, get_body = exchange(server, "GET", path)
            head_status, head_headers, head_body = exchange(
                server, "HEAD", path
            )
            assert head_status == get_status, path
            assert head_body == b"", path
            stable = {
                key.lower(): value
                for key, value in get_headers.items()
                if key.lower() not in _VOLATILE_HEADERS
            }
            head_stable = {
                key.lower(): value
                for key, value in head_headers.items()
                if key.lower() not in _VOLATILE_HEADERS
            }
            assert head_stable == stable, path
            # In particular: the GET body's exact length is declared.
            assert header(head_headers, "Content-Length") == str(
                len(get_body)
            ), path

    def test_head_honours_conditionals(self, server, fingerprint):
        status, _, body = exchange(
            server, "HEAD", f"/v1/results/{fingerprint}",
            headers={"If-None-Match": f'"{fingerprint}"'},
        )
        assert (status, body) == (304, b"")


class TestFraming:
    def test_exact_content_length_everywhere(self, server, fingerprint):
        cases = [
            ("GET", "/v1/healthz"),
            ("GET", "/v1/metrics"),
            ("GET", "/v1/jobs"),
            ("GET", "/v1/jobs/job-999999"),  # 404
            ("GET", "/v1/datasets"),
            ("GET", "/v1/datasets/absent"),  # 404
            ("GET", f"/v1/results/{fingerprint}"),
            ("GET", f"/v1/results/{fingerprint}?fields=everything"),  # 400
            ("GET", "/v1/results/NOT-HEX"),  # 400
            ("GET", "/v1/nope"),  # 404
            ("DELETE", "/v1/jobs/job-999999"),  # 404
            ("POST", "/v1/nope"),  # 404
        ]
        for method, path in cases:
            status, headers, body = exchange(server, method, path)
            declared = header(headers, "Content-Length")
            assert declared is not None, (method, path)
            assert int(declared) == len(body), (method, path, status)

    def test_malformed_body_400_keeps_connection_usable(self, server):
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            conn.request(
                "POST", "/v1/runs", body=b'{"dataset": [broken',
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = response.read()
            assert response.status == 500 or response.status == 400
            assert int(response.headers["Content-Length"]) == len(body)
            # Framing survived; whether the server kept the connection
            # is its call — but it must have *said* so either way.
            if response.will_close:
                assert response.headers.get("Connection") == "close"
        finally:
            conn.close()

    def test_oversized_body_400_announces_connection_close(self, server):
        # Regression: the 400 for an over-limit Content-Length drops
        # the connection (the body is never read), and must SAY so —
        # a keep-alive client without the header waits on a dead
        # socket until its own timeout.
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            conn.putrequest("PUT", "/v1/datasets/huge")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str((128 << 20) + 1))
            conn.endheaders()
            response = conn.getresponse()
            body = response.read()
            assert response.status == 400
            assert b"bytes" in body
            assert int(response.headers["Content-Length"]) == len(body)
            assert response.headers.get("Connection") == "close"
            assert response.will_close
        finally:
            conn.close()

    def test_keep_alive_serves_50_requests_on_one_connection(
        self, server, fingerprint
    ):
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=60)
        paths = [
            "/v1/healthz",
            f"/v1/results/{fingerprint}?fields=headline",
            "/v1/datasets",
            f"/v1/results/{fingerprint}",
            "/v1/results/0000beef",  # a 404 must not kill the connection
        ]
        try:
            for index in range(50):
                status, headers, body = exchange(
                    server, "GET", paths[index % len(paths)], conn=conn
                )
                assert status in (200, 404), index
                assert int(header(headers, "Content-Length")) == len(body)
        finally:
            conn.close()


class TestWarmBytes:
    def test_warm_responses_are_byte_identical_to_cold(
        self, server, fingerprint
    ):
        views = [
            f"/v1/results/{fingerprint}",
            f"/v1/results/{fingerprint}?fields=headline",
            f"/v1/results/{fingerprint}?section=outputs.run.headline",
            (
                f"/v1/results/{fingerprint}"
                "?section=outputs.run.day.slice_partition.assignment"
                "&page=1&page_size=50"
            ),
        ]
        # Drop every cached view so the first pass below really is the
        # cold parse-and-render path the warm pass is compared against.
        server.service.results.bytes_cache.invalidate(fingerprint)
        for path in views:
            _, _, cold = exchange(server, "GET", path)
            _, _, warm = exchange(server, "GET", path)
            assert warm == cold, path

    def test_warm_hits_count_and_parse_free(self, server, fingerprint):
        cache = server.service.results.bytes_cache
        path = f"/v1/results/{fingerprint}"
        exchange(server, "GET", path)  # ensure warm
        before = cache.stats()
        for _ in range(5):
            status, _, _ = exchange(server, "GET", path)
            assert status == 200
        after = cache.stats()
        assert after["hits"] - before["hits"] == 5
        assert after["misses"] == before["misses"]


@pytest.mark.slow
class TestWarmLoad:
    def test_concurrent_warm_load_is_parse_free_and_fast(
        self, server, fingerprint
    ):
        """8 concurrent keep-alive clients hammer one warm fingerprint.

        Asserts the two warm-path promises: zero byte-cache misses
        after warm-up (no JSON is parsed or rendered under load) and a
        pinned per-request latency bound far under the ~227 ms cold
        parse cost the cache replaced.
        """
        clients = 8
        per_client = 25
        path = f"/v1/results/{fingerprint}?fields=headline"
        exchange(server, "GET", f"/v1/results/{fingerprint}")
        exchange(server, "GET", path)  # warm both served views
        cache = server.service.results.bytes_cache
        before = cache.stats()
        latencies: list[float] = []
        errors: list[str] = []
        lock = threading.Lock()

        def storm() -> None:
            host, port = server.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=60)
            local: list[float] = []
            try:
                for _ in range(per_client):
                    started = time.perf_counter()
                    status, _, body = exchange(
                        server, "GET", path, conn=conn
                    )
                    local.append(time.perf_counter() - started)
                    if status != 200 or not body:
                        with lock:
                            errors.append(f"status={status}")
                        return
            except OSError as error:
                with lock:
                    errors.append(repr(error))
            finally:
                conn.close()
            with lock:
                latencies.extend(local)

        threads = [threading.Thread(target=storm) for _ in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(latencies) == clients * per_client
        after = cache.stats()
        assert after["misses"] == before["misses"], (
            "warm load re-rendered payloads: the byte cache missed"
        )
        assert after["hits"] - before["hits"] >= clients * per_client
        latencies.sort()
        p95 = latencies[int(len(latencies) * 0.95) - 1]
        # Generous for a loaded 1-CPU box, impossible for a path that
        # re-parses the multi-MB envelope per request.
        assert p95 < 0.2, f"p95 warm latency {p95:.3f}s"
