"""Tests for the property-graph store."""

import pytest

from repro.exceptions import GraphError, MissingNodeError, MissingRelationshipError
from repro.graphdb import PropertyGraph


def trip_graph() -> PropertyGraph:
    graph = PropertyGraph()
    a = graph.create_node(["Station"], {"name": "A"})
    b = graph.create_node(["Station"], {"name": "B"})
    c = graph.create_node(["Candidate"], {"name": "C"})
    graph.create_relationship(a.node_id, "TRIP", b.node_id, {"day": 0})
    graph.create_relationship(b.node_id, "TRIP", a.node_id, {"day": 1})
    graph.create_relationship(a.node_id, "TRIP", c.node_id, {"day": 2})
    graph.create_relationship(c.node_id, "TRIP", c.node_id, {"day": 3})
    return graph


class TestNodes:
    def test_create_and_fetch(self):
        graph = PropertyGraph()
        node = graph.create_node(["Station"], {"name": "A"})
        assert graph.node(node.node_id)["name"] == "A"
        assert node.has_label("Station")

    def test_explicit_id(self):
        graph = PropertyGraph()
        node = graph.create_node(node_id=42)
        assert node.node_id == 42
        # Auto ids continue beyond explicit ones.
        assert graph.create_node().node_id == 43

    def test_duplicate_id_rejected(self):
        graph = PropertyGraph()
        graph.create_node(node_id=1)
        with pytest.raises(GraphError):
            graph.create_node(node_id=1)

    def test_missing_node_raises(self):
        with pytest.raises(MissingNodeError):
            PropertyGraph().node(7)

    def test_label_index(self):
        graph = trip_graph()
        assert graph.count_nodes("Station") == 2
        assert graph.count_nodes("Candidate") == 1
        assert graph.count_nodes("Ghost") == 0
        names = [node["name"] for node in graph.nodes("Station")]
        assert names == ["A", "B"]

    def test_delete_node_removes_relationships(self):
        graph = trip_graph()
        graph.delete_node(0)
        assert graph.node_count == 2
        assert graph.count_relationships("TRIP") == 1  # only C->C left

    def test_get_with_default(self):
        graph = PropertyGraph()
        node = graph.create_node(properties={"x": 1})
        assert node.get("x") == 1
        assert node.get("missing", "d") == "d"


class TestRelationships:
    def test_create_requires_endpoints(self):
        graph = PropertyGraph()
        node = graph.create_node()
        with pytest.raises(MissingNodeError):
            graph.create_relationship(node.node_id, "TRIP", 99)
        with pytest.raises(MissingNodeError):
            graph.create_relationship(99, "TRIP", node.node_id)

    def test_type_index(self):
        graph = trip_graph()
        assert graph.count_relationships("TRIP") == 4
        assert graph.count_relationships("GHOST") == 0

    def test_properties(self):
        graph = trip_graph()
        days = [rel["day"] for rel in graph.relationships("TRIP")]
        assert days == [0, 1, 2, 3]

    def test_delete_relationship(self):
        graph = trip_graph()
        first = next(graph.relationships("TRIP"))
        graph.delete_relationship(first.rel_id)
        assert graph.count_relationships("TRIP") == 3
        with pytest.raises(MissingRelationshipError):
            graph.relationship(first.rel_id)

    def test_other_endpoint(self):
        graph = trip_graph()
        rel = next(graph.relationships("TRIP"))
        assert rel.other(rel.start) == rel.end
        assert rel.other(rel.end) == rel.start
        with pytest.raises(GraphError):
            rel.other(12345)

    def test_loop_detection(self):
        graph = trip_graph()
        loops = [rel for rel in graph.relationships() if rel.is_loop]
        assert len(loops) == 1


class TestTraversal:
    def test_outgoing_incoming(self):
        graph = trip_graph()
        assert len(list(graph.outgoing(0, "TRIP"))) == 2
        assert len(list(graph.incoming(0, "TRIP"))) == 1

    def test_incident_counts_loop_once(self):
        graph = trip_graph()
        assert len(list(graph.incident(2, "TRIP"))) == 2  # A->C and C->C

    def test_neighbours_ignore_loops_and_direction(self):
        graph = trip_graph()
        assert graph.neighbours(0) == {1, 2}
        assert graph.neighbours(2) == {0}

    def test_degree(self):
        graph = trip_graph()
        assert graph.degree(0) == 2
        assert graph.degree(2) == 1
        assert graph.degree(2, count_loops=True) == 2

    def test_find_nodes_with_predicate(self):
        graph = trip_graph()
        hits = graph.find_nodes("Station", lambda n: n["name"] == "B")
        assert [node.node_id for node in hits] == [1]

    def test_traversal_of_missing_node_raises(self):
        with pytest.raises(MissingNodeError):
            list(trip_graph().outgoing(99))
