"""Append-mode datasets and delta-aware incremental recompute.

Three layers under test:

* **store** — ``DatasetStore.append`` rolls the content digest forward
  as a chain, re-chains exactly the temporal slices the delta touches,
  keeps history, enforces id monotonicity, and leaves torn entries
  reading as *absent* (anchor-first deletion);
* **runner** — an incremental re-run over the appended dataset produces
  results byte-identical to a cold run, across the append edge cases
  (slice-boundary starts, out-of-order timestamps, first trips landing
  in a previously empty slice);
* **service/HTTP** — ``PATCH /v1/datasets/<name>`` with 409/413/400
  mapping, moved ``ETag``s, ranged ``Content-Range`` uploads, the
  ``ingestion`` healthz block, and the pinned byte-identity of an
  incremental envelope against a cold recompute of the same job.
"""

import hashlib
import json
import time
import urllib.error
import urllib.request
from dataclasses import replace
from datetime import datetime, timedelta

import pytest

from repro.data.dataset import MobyDataset
from repro.data.records import RentalRecord
from repro.exceptions import DatasetConflictError, ServiceError
from repro.pipeline.cache import StageCache
from repro.pipeline.fingerprint import (
    chain_digest,
    dataset_digest,
    rentals_digest,
)
from repro.pipeline.runner import PipelineRunner
from repro.service import ExpansionService, make_server
from repro.service.datasets import DatasetStore

EMPTY_SLICE = hashlib.sha256().hexdigest()


def _delta_rows(
    raw,
    count,
    *,
    start=None,
    step_s=90,
    duration_s=600,
    pickup=None,
    dropoff=None,
):
    """``count`` well-formed delta records with ids above the stored max.

    Endpoints default to the busiest stored trip's so cleaning keeps
    them; ``start`` anchors the first trip's timestamp.
    """
    template = next(
        rental
        for rental in raw.rentals()
        if rental.rental_location_id is not None
        and rental.return_location_id is not None
    )
    base = (raw.max_rental_id() or 0) + 1
    first = start if start is not None else template.started_at
    rows = []
    for index in range(count):
        started = first + timedelta(seconds=step_s * index)
        rows.append(
            RentalRecord(
                rental_id=base + index,
                bike_id=template.bike_id,
                started_at=started,
                ended_at=started + timedelta(seconds=duration_s),
                rental_location_id=(
                    pickup if pickup is not None
                    else template.rental_location_id
                ),
                return_location_id=(
                    dropoff if dropoff is not None
                    else template.return_location_id
                ),
            )
        )
    return rows


def _merged_copy(raw, delta):
    merged = raw.copy()
    for record in delta:
        merged.add_rental(record)
    return merged


def _assert_incremental_matches_cold(prefix, delta):
    """Cold run vs delta-aware re-run over the stored appended dataset.

    Returns the runner's incremental report so callers can also assert
    *how* the result was produced (merged stages, reused slices).
    """
    store = DatasetStore()
    meta = store.put("d", prefix)
    appended = store.append("d", delta)
    assert appended is not None
    merged, digest = store.get_with_digest("d")
    assert digest == appended["digest"]

    cache = StageCache()
    PipelineRunner(prefix, cache=cache, raw_digest=meta["digest"]).run()
    cold = PipelineRunner(
        merged, cache=StageCache(), raw_digest=digest
    ).run()
    runner = PipelineRunner(
        merged, cache=cache, raw_digest=digest, lineage=store.lineage("d")
    )
    incremental = runner.run()

    cold_doc, incremental_doc = cold.to_dict(), incremental.to_dict()
    cold_doc.pop("timings", None)
    incremental_doc.pop("timings", None)
    assert json.dumps(cold_doc, sort_keys=True) == json.dumps(
        incremental_doc, sort_keys=True
    )
    report = runner.incremental_report()
    assert report["mode"] == "incremental"
    return report


class TestAppendStore:
    """DatasetStore.append: digests, lineage, conflicts, crash shape."""

    def test_append_chains_digest_and_tracks_history(self, small_raw):
        store = DatasetStore()
        meta = store.put("city", small_raw)
        delta = _delta_rows(small_raw, 5)
        appended = store.append("city", delta)
        assert appended["digest"] == chain_digest(
            meta["digest"], rentals_digest(delta)
        )
        assert appended["appends"] == 1
        assert appended["n_rentals"] == meta["n_rentals"] + 5
        assert appended["max_rental_id"] == delta[-1].rental_id
        assert appended["history"][-1]["digest"] == meta["digest"]
        lineage = store.lineage("city")
        assert lineage["digest"] == appended["digest"]
        assert lineage["history"][-1]["max_rental_id"] == (
            meta["max_rental_id"]
        )

    def test_appended_log_reads_back_as_the_merged_dataset(self, small_raw):
        store = DatasetStore()
        store.put("city", small_raw)
        delta = _delta_rows(small_raw, 7)
        store.append("city", delta)
        merged, _ = store.get_with_digest("city")
        # Byte-compatible append: the streamed log parses to exactly
        # the rows a one-shot ingest of prefix+delta would hold.
        assert dataset_digest(merged) == dataset_digest(
            _merged_copy(small_raw, delta)
        )

    def test_append_rechains_only_touched_slices(self, small_raw):
        store = DatasetStore()
        meta = store.put("city", small_raw)
        start = datetime(2024, 6, 3, 7, 0, 0)  # one Monday, hour 7 only
        appended = store.append(
            "city", _delta_rows(small_raw, 4, start=start, step_s=30)
        )
        before, after = meta["slices"], appended["slices"]
        assert after["day"][0] != before["day"][0]
        assert after["day"][1:] == before["day"][1:]
        changed_hours = [
            hour for hour in range(24)
            if after["hour"][hour] != before["hour"][hour]
        ]
        assert changed_hours == [7]

    def test_stale_and_duplicate_ids_conflict(self, small_raw):
        store = DatasetStore()
        store.put("city", small_raw)
        stale = [replace(_delta_rows(small_raw, 1)[0], rental_id=1)]
        with pytest.raises(DatasetConflictError):
            store.append("city", stale)
        twice = _delta_rows(small_raw, 1) * 2
        with pytest.raises(DatasetConflictError):
            store.append("city", twice)
        with pytest.raises(ServiceError):
            store.append("city", [])

    def test_append_to_absent_dataset_returns_none(self, small_raw):
        store = DatasetStore()
        assert store.append("ghost", _delta_rows(small_raw, 1)) is None

    def test_pre_append_era_meta_upgrades_on_first_append(self, small_raw):
        store = DatasetStore()
        fresh = store.put("city", small_raw)
        # Rewrite the metadata document as a v1 (pre-append) service
        # would have stored it: no slices, no max_rental_id.
        legacy = {
            key: value
            for key, value in json.loads(
                store.namespace.get_part("city", "meta.json").decode()
            ).items()
            if key not in (
                "schema", "slices", "max_rental_id", "appends", "history"
            )
        }
        store.namespace.put_part(
            "city", "meta.json", json.dumps(legacy).encode()
        )
        store._meta_bytes.invalidate("city")
        delta = _delta_rows(small_raw, 3)
        appended = store.append("city", delta)
        # The upgrade scan reproduced ingest-time slice digests, so the
        # append chains off the same values a v2 put would have stored.
        assert appended["digest"] == chain_digest(
            legacy["digest"], rentals_digest(delta)
        )
        untouched = [
            hour for hour in range(24)
            if appended["slices"]["hour"][hour] == fresh["slices"]["hour"][hour]
        ]
        assert len(untouched) >= 22  # delta touches at most a couple

    def test_torn_append_reads_as_absent_and_re_push_recovers(
        self, small_raw, tmp_path
    ):
        store = DatasetStore(tmp_path / "datasets")
        store.put("city", small_raw)
        # Simulate a crash at the worst point: anchor deleted, log
        # half-rewritten.  The entry must read as absent everywhere.
        store.namespace.delete_part("city", "meta.json")
        log = store.namespace.get_part("city", "rentals.csv")
        store.namespace.put_part("city", "rentals.csv", log[: len(log) // 2])
        store._meta_bytes.invalidate("city")
        assert store.digest("city") is None
        assert store.get("city") is None
        assert store.lineage("city") is None
        assert store.append("city", _delta_rows(small_raw, 1)) is None
        # Recovery is a plain re-push.
        meta = store.put("city", small_raw)
        assert store.digest("city") == meta["digest"]


class TestIncrementalExactness:
    """Append edge cases: incremental results must equal cold results."""

    def test_slice_boundary_trips(self, small_raw):
        # Starts exactly on an hour boundary and one second before it:
        # the two trips must land in different hour slices, and the
        # incremental merge must agree with the cold run about both.
        boundary = datetime(2024, 6, 3, 8, 0, 0)
        delta = _delta_rows(small_raw, 1, start=boundary) + _delta_rows(
            _merged_copy(small_raw, _delta_rows(small_raw, 1, start=boundary)),
            1,
            start=boundary - timedelta(seconds=1),
        )
        report = _assert_incremental_matches_cold(small_raw, delta)
        assert report["slices_recomputed"] >= 3  # day 0, hours 7 and 8

    def test_out_of_order_timestamps_in_append(self, small_raw):
        # Ids are monotonic but the timestamps rewind into the middle
        # of the stored log — legal, and must merge exactly.
        earliest = min(r.started_at for r in small_raw.rentals())
        delta = _delta_rows(
            small_raw, 6, start=earliest + timedelta(hours=1), step_s=45
        )
        report = _assert_incremental_matches_cold(small_raw, delta)
        assert report["slices_recomputed"] >= 1

    def test_append_creating_new_slices(self, small_raw):
        # First trips in an hour slice that held none: the slice's
        # digest chains off the empty digest and the pipeline grows a
        # new temporal slice, identically to a cold run.  The small
        # synthetic city is busy around the clock, so carve the target
        # hour out of the prefix first.
        hours = [r.started_at.hour for r in small_raw.rentals()]
        target = min(range(24), key=hours.count)
        doc = small_raw.to_dict()
        doc["rentals"] = [
            row for row in doc["rentals"]
            if datetime.fromisoformat(row[2]).hour != target
        ]
        prefix = MobyDataset.from_dict(doc)
        store = DatasetStore()
        meta = store.put("probe", prefix)
        assert meta["slices"]["hour"][target] == EMPTY_SLICE
        start = datetime(2024, 6, 5, target, 10, 0)
        delta = _delta_rows(prefix, 3, start=start, step_s=60,
                            duration_s=300)
        report = _assert_incremental_matches_cold(prefix, delta)
        assert report["slices_recomputed"] >= 2  # the new hour + its day


@pytest.fixture(scope="module")
def inc_server(small_raw, tmp_path_factory):
    service = ExpansionService(max_workers=2)
    service.register_dataset("inc", small_raw)
    server = make_server(service, port=0).start_background()
    yield server, service
    server.stop()
    service.close()


def _http(server, path, body=None, method=None, headers=None):
    data = json.dumps(body).encode() if body is not None else None
    base_headers = {"Content-Type": "application/json"} if data else {}
    base_headers.update(headers or {})
    request = urllib.request.Request(
        server.url + path, data=data, method=method, headers=base_headers
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


class TestAppendHTTP:
    def test_patch_appends_and_moves_the_etag(self, inc_server, small_raw):
        server, service = inc_server
        _, meta_body, before_headers = _http(server, "/v1/datasets/inc")
        before = json.loads(meta_body)
        delta = _delta_rows(service.datasets.get("inc"), 3)
        rows = [
            [r.rental_id, r.bike_id, r.started_at.isoformat(),
             r.ended_at.isoformat(), r.rental_location_id,
             r.return_location_id]
            for r in delta
        ]
        status, body, _ = _http(
            server, "/v1/datasets/inc", {"rentals": rows}, method="PATCH"
        )
        assert status == 200
        meta = json.loads(body)
        assert meta["digest"] != before["digest"]
        assert meta["appends"] >= 1
        status, _, after_headers = _http(server, "/v1/datasets/inc")
        assert status == 200
        assert after_headers["ETag"] != before_headers["ETag"]
        # The old validator no longer matches: a conditional GET gets
        # fresh bytes, not a stale 304.
        status, body, _ = _http(
            server, "/v1/datasets/inc",
            headers={"If-None-Match": before_headers["ETag"]},
        )
        assert status == 200
        assert json.loads(body)["digest"] == meta["digest"]

    def test_patch_error_mapping(self, inc_server):
        server, _ = inc_server
        status, _, _ = _http(
            server, "/v1/datasets/inc",
            {"rentals": [[1, 1, "2024-01-01T07:00:00",
                          "2024-01-01T07:10:00", 1, 2]]},
            method="PATCH",
        )
        assert status == 409  # stale id
        status, _, _ = _http(
            server, "/v1/datasets/inc", {"rentals": [[1, 2]]}, method="PATCH"
        )
        assert status == 400  # malformed row
        status, _, _ = _http(
            server, "/v1/datasets/ghost", {"rentals": [[10**9, 1,
             "2024-01-01T07:00:00", "2024-01-01T07:10:00", 1, 2]]},
            method="PATCH",
        )
        assert status == 404

    def test_integrity_header_is_verified(self, inc_server, small_raw):
        server, service = inc_server
        delta = _delta_rows(service.datasets.get("inc"), 1)
        rows = [[r.rental_id, r.bike_id, r.started_at.isoformat(),
                 r.ended_at.isoformat(), r.rental_location_id,
                 r.return_location_id] for r in delta]
        body = {"rentals": rows}
        status, _, _ = _http(
            server, "/v1/datasets/inc", body, method="PATCH",
            headers={"X-Repro-Content-SHA256": "0" * 64},
        )
        assert status == 400
        digest = hashlib.sha256(json.dumps(body).encode()).hexdigest()
        status, _, _ = _http(
            server, "/v1/datasets/inc", body, method="PATCH",
            headers={"X-Repro-Content-SHA256": digest},
        )
        assert status == 200

    def test_ranged_upload_roundtrip(self, inc_server, small_raw):
        server, _ = inc_server
        body = json.dumps(small_raw.to_dict()).encode()
        half = len(body) // 2

        def fragment(data, start, end):
            request = urllib.request.Request(
                server.url + "/v1/datasets/ranged", data=data, method="PUT",
                headers={
                    "Content-Range": f"bytes {start}-{end}/{len(body)}"
                },
            )
            try:
                with urllib.request.urlopen(request, timeout=300) as resp:
                    return resp.status, json.loads(resp.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

        status, doc = fragment(body[:half], 0, half - 1)
        assert status == 202
        assert doc == {
            "type": "DatasetUpload", "name": "ranged",
            "received": half, "total": len(body), "complete": False,
        }
        # A gap is refused with 416 and does not disturb the session.
        status, doc = fragment(body[half + 9:], half + 9, len(body) - 1)
        assert status == 416
        status, doc = fragment(body[half:], half, len(body) - 1)
        assert status == 201
        assert doc["complete"] is True
        assert doc["body_sha256"] == hashlib.sha256(body).hexdigest()
        assert doc["n_rentals"] == small_raw.n_rentals

    def test_healthz_reports_ingestion_block(self, inc_server):
        server, _ = inc_server
        _, body, _ = _http(server, "/v1/healthz")
        ingestion = json.loads(body)["ingestion"]
        assert ingestion["appends"] >= 1
        assert ingestion["bytes_appended"] > 0
        assert ingestion["slices_invalidated"] >= 1
        assert "incremental_runs" in ingestion

    def test_append_racing_inflight_run_serves_no_stale_views(
        self, inc_server, small_raw
    ):
        server, service = inc_server
        service.register_dataset("race", small_raw)
        _, body, _ = _http(server, "/v1/datasets/race")
        old_digest = json.loads(body)["digest"]
        status, body, _ = _http(
            server, "/v1/runs",
            {"dataset": {"kind": "named", "name": "race"}, "wait": False},
        )
        assert status == 202
        job_id = json.loads(body)["job_id"]
        delta = _delta_rows(small_raw, 2)
        rows = [[r.rental_id, r.bike_id, r.started_at.isoformat(),
                 r.ended_at.isoformat(), r.rental_location_id,
                 r.return_location_id] for r in delta]
        status, body, _ = _http(
            server, "/v1/datasets/race", {"rentals": rows}, method="PATCH"
        )
        assert status == 200
        new_digest = json.loads(body)["digest"]
        # Wait the in-flight run out; its completion must not resurrect
        # the pre-append metadata view.
        start = time.monotonic()
        while True:
            _, job_body, _ = _http(server, f"/v1/jobs/{job_id}")
            job = json.loads(job_body)
            if job["status"] in ("done", "failed"):
                break
            assert time.monotonic() - start < 300
            time.sleep(0.05)
        assert job["status"] == "done"
        # The run resolved one consistent snapshot — the dataset as it
        # was before or after the append, never a torn mix.
        _, result, _ = _http(server, job["result_url"])
        assert json.loads(result)["dataset_digest"] in (
            old_digest, new_digest
        )
        # Its completion must not resurrect stale views: every dataset
        # read serves the appended content.
        _, body, headers = _http(server, "/v1/datasets/race")
        assert json.loads(body)["digest"] == new_digest
        assert headers["ETag"].strip('"') == new_digest


class TestIncrementalService:
    def test_incremental_envelope_is_byte_identical_to_cold(
        self, small_raw, tmp_path, monkeypatch
    ):
        """The pinned byte-identity test.

        One service, one fingerprint: after the append, the job is
        computed twice — first through the delta-aware merge (stage
        cache warm with prefix values only), then cold (lineage
        withheld, stage cache emptied) — and the two stored canonical
        envelopes must match byte for byte, fingerprint and digest
        included.
        """
        service = ExpansionService(store_dir=tmp_path / "store")
        try:
            service.register_dataset("city", small_raw)
            spec = {"dataset": {"kind": "named", "name": "city"}}
            service.run(spec, timeout=600)  # warm the prefix stages
            delta = _delta_rows(small_raw, 4)
            assert service.append_dataset("city", delta) is not None

            incremental_envelope = service.run(spec, timeout=600)
            fingerprint = incremental_envelope["fingerprint"]
            incremental_job = next(
                job for job in service.jobs()
                if job.fingerprint == fingerprint
            )
            block = (incremental_job.timings or {}).get("incremental")
            assert block is not None
            assert block["mode"] == "incremental"
            assert block["stages_merged"]
            assert block["slices_reused"] > 0
            assert block["slices_recomputed"] >= 1
            assert service.incremental_runs == 1
            assert service.stats()["ingestion"]["incremental_runs"] == 1
            incremental_canonical = incremental_job.canonical

            # The in-flight entry is cleared moments *after* waiters
            # unblock; drain it so the next submission cannot join the
            # finished job instead of recomputing.
            deadline = time.monotonic() + 30
            while fingerprint in service._inflight:
                assert time.monotonic() < deadline
                time.sleep(0.01)

            # Drop the stored result so the same fingerprint recomputes
            # — this time genuinely cold: lineage withheld and the
            # stage cache emptied of every merged-dataset value.
            monkeypatch.setattr(
                service.datasets, "lineage", lambda name: None
            )
            monkeypatch.setattr(service, "cache", StageCache())
            service.results.namespace.delete(fingerprint)
            service.results.bytes_cache.invalidate(fingerprint)
            cold_envelope = service.run(spec, timeout=600)
            cold_job = [
                job for job in service.jobs()
                if job.fingerprint == fingerprint
            ][-1]  # jobs() is oldest-first; the recompute is the newest
            cold_block = (cold_job.timings or {}).get("incremental") or {}
            assert cold_block.get("mode") != "incremental"
            assert not cold_block.get("stages_merged")

            assert cold_job.canonical == incremental_canonical
            assert cold_envelope == incremental_envelope
        finally:
            service.close()
