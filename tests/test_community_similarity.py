"""Tests for NMI and ARI partition-similarity measures."""

import pytest
from hypothesis import given, strategies as st

from repro.community import (
    Partition,
    adjusted_rand_index,
    normalized_mutual_information,
)
from repro.exceptions import CommunityError

A = Partition.from_assignment({1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 2})
SAME_AS_A = Partition.from_assignment({1: 9, 2: 9, 3: 4, 4: 4, 5: 7, 6: 7})
DIFFERENT = Partition.from_assignment({1: 0, 2: 1, 3: 0, 4: 1, 5: 0, 6: 1})


class TestNMI:
    def test_identical_partitions(self):
        assert normalized_mutual_information(A, SAME_AS_A) == pytest.approx(1.0)

    def test_range(self):
        value = normalized_mutual_information(A, DIFFERENT)
        assert 0.0 <= value <= 1.0

    def test_independent_partitions_score_low(self):
        assert normalized_mutual_information(A, DIFFERENT) < 0.35

    def test_single_community_convention(self):
        ones = Partition.from_assignment({1: 0, 2: 0, 3: 0})
        other_ones = Partition.from_assignment({1: 5, 2: 5, 3: 5})
        assert normalized_mutual_information(ones, other_ones) == 1.0

    def test_trivial_vs_structured(self):
        ones = Partition.from_assignment({n: 0 for n in range(1, 7)})
        assert normalized_mutual_information(A, ones) == 0.0

    def test_mismatched_nodes_rejected(self):
        small = Partition.from_assignment({1: 0})
        with pytest.raises(CommunityError):
            normalized_mutual_information(A, small)

    def test_symmetry(self):
        assert normalized_mutual_information(
            A, DIFFERENT
        ) == pytest.approx(normalized_mutual_information(DIFFERENT, A))


class TestARI:
    def test_identical_partitions(self):
        assert adjusted_rand_index(A, SAME_AS_A) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        assert abs(adjusted_rand_index(A, DIFFERENT)) < 0.4

    def test_symmetry(self):
        assert adjusted_rand_index(A, DIFFERENT) == pytest.approx(
            adjusted_rand_index(DIFFERENT, A)
        )

    def test_singletons_vs_one_block(self):
        singletons = Partition.from_assignment({n: n for n in range(1, 7)})
        block = Partition.from_assignment({n: 0 for n in range(1, 7)})
        assert adjusted_rand_index(singletons, block) == pytest.approx(0.0)

    def test_mismatched_nodes_rejected(self):
        small = Partition.from_assignment({1: 0})
        with pytest.raises(CommunityError):
            adjusted_rand_index(A, small)


class TestSimilarityProperties:
    @given(
        st.dictionaries(
            st.integers(0, 15), st.integers(0, 3), min_size=2, max_size=16
        )
    )
    def test_self_similarity_is_one(self, assignment):
        partition = Partition.from_assignment(assignment)
        assert normalized_mutual_information(
            partition, partition
        ) == pytest.approx(1.0)
        assert adjusted_rand_index(partition, partition) == pytest.approx(1.0)

    @given(
        st.dictionaries(
            st.integers(0, 15), st.integers(0, 3), min_size=2, max_size=16
        ),
        st.dictionaries(
            st.integers(0, 15), st.integers(0, 3), min_size=2, max_size=16
        ),
    )
    def test_bounded(self, assignment_a, assignment_b):
        nodes = set(assignment_a) | set(assignment_b)
        a = Partition.from_assignment(
            {n: assignment_a.get(n, 0) for n in nodes}
        )
        b = Partition.from_assignment(
            {n: assignment_b.get(n, 0) for n in nodes}
        )
        nmi = normalized_mutual_information(a, b)
        ari = adjusted_rand_index(a, b)
        assert 0.0 <= nmi <= 1.0
        assert -1.0 <= ari <= 1.0
