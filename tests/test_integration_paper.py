"""End-to-end calibration tests against the paper's numbers.

These run the full paper-scale pipeline (seed 7) once per session and
assert the *shape* criteria from DESIGN.md: exact Table-I counts (the
generator is calibrated to them), factor-level agreement on the graph
sizes, the selection outcome, the ~74 % self-containment, and the
rising-modularity trend across temporal granularities.
"""

import pytest

from repro import validate_expansion
from repro.core import self_containment
from repro.reporting import (
    PAPER,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
    experiment_table6,
)

pytestmark = pytest.mark.slow


class TestTable1Exact:
    def test_original_counts(self, paper_result):
        report = paper_result.cleaning_report
        assert report.before.n_stations == 95
        assert report.before.n_rentals == 62_324
        assert report.before.n_locations == 14_239

    def test_cleaned_counts(self, paper_result):
        report = paper_result.cleaning_report
        assert report.after.n_stations == 92
        assert report.after.n_rentals == 61_872
        assert report.after.n_locations == 14_156


class TestTable2Shape:
    def test_all_measures_within_factor(self, paper_result):
        output = experiment_table2(paper_result)
        for item in output.comparisons():
            assert item.within_factor(1.35), (
                f"{item.measure}: paper {item.expected}, got {item.measured}"
            )

    def test_bidirectionality(self, paper_result):
        stats = paper_result.candidates.stats()
        ratio = (
            stats.n_directed_edges_no_loops
            / stats.n_undirected_edges_no_loops
        )
        assert 1.5 <= ratio <= 2.0


class TestTable3Shape:
    def test_selected_station_count(self, paper_result):
        expected = PAPER["table3"]["selected_stations"]
        assert expected / 1.5 <= paper_result.n_new_stations <= expected * 1.5

    def test_fixed_majority_of_trips(self, paper_result):
        stats = paper_result.network.stats()
        assert stats.trips_from_fixed > 2 * stats.trips_from_selected

    def test_totals_preserved(self, paper_result):
        stats = paper_result.network.stats()
        assert stats.n_trips == 61_872


class TestCommunityShape:
    def test_community_counts(self, paper_result):
        assert 3 <= paper_result.basic.n_communities <= 5  # paper: 3
        assert 5 <= paper_result.day.n_communities <= 10  # paper: 7
        assert 8 <= paper_result.hour.n_communities <= 14  # paper: 10

    def test_modularity_rises_with_granularity(self, paper_result):
        assert (
            paper_result.basic.modularity
            < paper_result.day.modularity
            < paper_result.hour.modularity
        )

    def test_self_containment_near_paper(self, paper_result):
        value = self_containment(
            paper_result.network.trips, paper_result.basic.partition
        )
        assert 0.64 <= value <= 0.84  # paper: ~0.74

    def test_weekend_community_exists(self, paper_result):
        from repro.core import daily_profile, weekend_share

        profiles = daily_profile(
            paper_result.network.trips, paper_result.day.station_partition
        )
        shares = [weekend_share(profile) for profile in profiles.values()]
        assert max(shares) > 0.4      # a leisure community
        assert min(shares) < 0.15     # a commuter community

    def test_hour_communities_differentiate(self, paper_result):
        from repro.core import commute_peak_share, hourly_profile, midday_share

        profiles = hourly_profile(
            paper_result.network.trips, paper_result.hour.station_partition
        )
        commute = [commute_peak_share(p) for p in profiles.values()]
        midday = [midday_share(p) for p in profiles.values()]
        assert max(commute) > 0.5
        assert max(midday) > 0.3


class TestPipelineHealth:
    def test_validation_passes(self, paper_result):
        report = validate_expansion(paper_result)
        assert report.all_passed, report.failures()

    def test_all_experiment_runners_work(self, paper_result):
        outputs = [
            experiment_table1(paper_result.cleaning_report),
            experiment_table2(paper_result),
            experiment_table3(paper_result),
            experiment_table4(paper_result),
            experiment_table5(paper_result),
            experiment_table6(paper_result),
        ]
        for output in outputs:
            assert output.text
            assert output.measured
