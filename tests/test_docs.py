"""Documentation stays true: route diff and markdown link integrity.

Two invariants:

* ``docs/API.md`` documents **exactly** the routes the HTTP front-end
  registers (``repro.service.http.ROUTES``) — adding an endpoint
  without documenting it, or documenting a removed one, fails here;
* every relative link in the repository's markdown resolves to a real
  file, so README/docs/ROADMAP never point at moved or deleted paths.
"""

import re
from pathlib import Path

import pytest

from repro.service.http import ROUTES

REPO_ROOT = Path(__file__).resolve().parent.parent
API_DOC = REPO_ROOT / "docs" / "API.md"

#: Markdown files under link-check.  Kept explicit (not a glob over the
#: whole tree) so generated/vendored files can never break CI.
MARKDOWN_FILES = sorted(
    [
        REPO_ROOT / "README.md",
        REPO_ROOT / "ROADMAP.md",
        *(REPO_ROOT / "docs").glob("*.md"),
    ]
)

_ROUTE_HEADING = re.compile(
    r"^### `(GET|POST|PUT|PATCH|DELETE) (/[^`]*)`", re.MULTILINE
)
_MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


class TestApiRouteDiff:
    def test_documented_routes_match_registered_handlers(self):
        documented = set(_ROUTE_HEADING.findall(API_DOC.read_text()))
        registered = set(ROUTES)
        missing_docs = registered - documented
        stale_docs = documented - registered
        assert not missing_docs, (
            f"routes served but undocumented in docs/API.md: {sorted(missing_docs)}"
        )
        assert not stale_docs, (
            f"routes documented but not served: {sorted(stale_docs)}"
        )

    def test_route_registry_is_nonempty_and_wellformed(self):
        assert len(ROUTES) >= 5
        for method, path in ROUTES:
            assert method in ("GET", "POST", "PUT", "PATCH", "DELETE")
            assert path.startswith("/v1/")


class TestMarkdownLinks:
    @pytest.mark.parametrize(
        "markdown", MARKDOWN_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT))
    )
    def test_relative_links_resolve(self, markdown):
        broken = []
        for target in _MARKDOWN_LINK.findall(markdown.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (markdown.parent / path).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"broken relative links in {markdown.name}: {broken}"

    def test_link_check_covers_the_docs_suite(self):
        names = {path.name for path in MARKDOWN_FILES}
        assert {"README.md", "ROADMAP.md", "API.md", "ARCHITECTURE.md",
                "BENCHMARKS.md"} <= names
