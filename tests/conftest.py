"""Shared fixtures.

Two dataset scales are provided:

* ``small_world`` / ``small_raw`` — a reduced synthetic city (fast;
  most unit and integration tests use it);
* ``paper_result`` — the full paper-calibrated pipeline run, built
  once per session and shared by the calibration/integration tests.
"""

from __future__ import annotations

import pytest

from repro import NetworkExpansionOptimiser
from repro.synth import (
    GeneratorConfig,
    NoiseConfig,
    SyntheticMobyGenerator,
    TripSamplerConfig,
)

try:
    import numpy  # noqa: F401 - availability probe only

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False


def require_numpy() -> None:
    """Skip the requesting test when numpy is unavailable.

    Synthetic dataset generation is numpy-only by design (its demand
    surfaces use ``np.exp``, which is not bit-reproducible in pure
    Python — a divergent dataset would invalidate every fingerprint),
    so every fixture that generates a world skips on the no-numpy leg.
    """
    if not HAVE_NUMPY:
        pytest.skip("synthetic dataset generation needs numpy")


def small_generator_config(seed: int = 11) -> GeneratorConfig:
    """A fast, reduced-scale generator configuration."""
    return GeneratorConfig(
        seed=seed,
        n_stations=30,
        n_adhoc_spots=220,
        n_clean_rentals=6_000,
        n_clean_locations=2_400,
        n_bikes=40,
        trips=TripSamplerConfig(),
        noise=NoiseConfig(
            n_locations_outside=6,
            n_locations_in_bay=5,
            n_locations_missing_coords=5,
            n_locations_unreferenced=4,
            n_rentals_missing_id=25,
            n_rentals_dangling_id=20,
            rentals_per_bad_station=5,
        ),
    )


@pytest.fixture(scope="session")
def small_world():
    """A reduced generated world (raw dataset + latent layout)."""
    require_numpy()
    return SyntheticMobyGenerator(
        seed=11, config=small_generator_config(seed=11)
    ).generate_world()


@pytest.fixture(scope="session")
def small_raw(small_world):
    """The reduced raw dataset."""
    return small_world.raw


@pytest.fixture(scope="session")
def small_result(small_raw):
    """A full pipeline run over the reduced dataset."""
    return NetworkExpansionOptimiser(small_raw).run()


@pytest.fixture(scope="session")
def paper_result():
    """The full paper-calibrated pipeline run (seed 7).  Slow; shared.

    Runs through the legacy :class:`NetworkExpansionOptimiser` facade.
    """
    from repro.synth import generate_paper_dataset

    require_numpy()
    return NetworkExpansionOptimiser(generate_paper_dataset(seed=7)).run()


@pytest.fixture(scope="session")
def paper_runner_result():
    """The same paper run, straight through :class:`PipelineRunner`.

    Executed with ``jobs=2`` so the golden suite also pins the
    parallel path to the serial facade numbers.  Slow; shared.
    """
    from repro import PipelineRunner
    from repro.synth import generate_paper_dataset

    require_numpy()
    return PipelineRunner(generate_paper_dataset(seed=7), jobs=2).run()


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="regenerate tests/goldens/*.json from the current pipeline",
    )
