"""Tests for graph serialisation (JSON, GraphML)."""

import xml.etree.ElementTree as ET

from repro.graphdb import (
    DirectedGraph,
    PropertyGraph,
    WeightedGraph,
    property_graph_from_json,
    property_graph_to_json,
    weighted_graph_to_graphml,
)


def sample_store() -> PropertyGraph:
    graph = PropertyGraph()
    a = graph.create_node(["Station"], {"name": "A", "lat": 53.34})
    b = graph.create_node(["Candidate"], {"name": "B"})
    graph.create_relationship(a.node_id, "TRIP", b.node_id, {"day": 3})
    graph.create_relationship(b.node_id, "TRIP", b.node_id, {"day": 5})
    return graph


class TestJsonRoundTrip:
    def test_round_trip_preserves_structure(self):
        original = sample_store()
        restored = property_graph_from_json(property_graph_to_json(original))
        assert restored.node_count == original.node_count
        assert restored.relationship_count == original.relationship_count
        assert restored.node(0)["name"] == "A"
        assert restored.node(0).has_label("Station")
        rels = list(restored.relationships("TRIP"))
        assert [rel["day"] for rel in rels] == [3, 5]

    def test_round_trip_twice_stable(self):
        once = property_graph_to_json(sample_store())
        twice = property_graph_to_json(property_graph_from_json(once))
        assert once == twice

    def test_non_scalar_properties_stringified(self):
        graph = PropertyGraph()
        graph.create_node(properties={"point": (1, 2)})
        text = property_graph_to_json(graph)
        assert "(1, 2)" in text


class TestGraphML:
    def test_undirected_document(self):
        graph = WeightedGraph.from_edges([("a", "b", 2.0), ("b", "c", 1.5)])
        text = weighted_graph_to_graphml(graph)
        root = ET.fromstring(text)
        ns = "{http://graphml.graphdrawing.org/xmlns}"
        graph_el = root.find(f"{ns}graph")
        assert graph_el is not None
        assert graph_el.get("edgedefault") == "undirected"
        assert len(graph_el.findall(f"{ns}node")) == 3
        assert len(graph_el.findall(f"{ns}edge")) == 2

    def test_directed_document(self):
        graph = DirectedGraph()
        graph.add_edge("x", "y", 3.0)
        text = weighted_graph_to_graphml(graph)
        root = ET.fromstring(text)
        ns = "{http://graphml.graphdrawing.org/xmlns}"
        assert root.find(f"{ns}graph").get("edgedefault") == "directed"

    def test_writes_file(self, tmp_path):
        graph = WeightedGraph.from_edges([(1, 2, 1.0)])
        path = tmp_path / "nested" / "graph.graphml"
        weighted_graph_to_graphml(graph, path)
        assert path.exists()
        ET.fromstring(path.read_text())  # valid XML

    def test_escapes_node_names(self):
        graph = WeightedGraph.from_edges([("a<b>&", "c", 1.0)])
        text = weighted_graph_to_graphml(graph)
        ET.fromstring(text)  # must stay well-formed
