"""Result envelopes: JSON round trips that preserve every headline number.

The fast tests exercise the reduced dataset; the slow one checks the
paper-scale envelope's headline block against the golden fixture the
regression suite pins (``tests/goldens/paper_seed7.json``).
"""

import json
from pathlib import Path

import pytest

from repro.analysis import plan_weekend_rebalancing
from repro.community import LouvainResult, Partition, TemporalCommunityResult
from repro.core.graphs import SelectedNetwork
from repro.core.results import ExpansionResult
from repro.core.selection import SelectionResult
from repro.data.cleaning import CleaningReport
from repro.reporting import (
    Comparison,
    ExperimentOutput,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
    experiment_table6,
)
from repro.serialize import canonical_json, decode_node, encode_node

GOLDEN_PATH = Path(__file__).parent / "goldens" / "paper_seed7.json"


def roundtrip(value):
    """to_dict -> JSON text -> from_dict, through real serialisation."""
    payload = json.loads(json.dumps(value.to_dict()))
    return type(value).from_dict(payload)


class TestNodeCodec:
    def test_scalars_pass_through(self):
        for node in (7, "station", 2.5, True, None):
            assert decode_node(encode_node(node)) == node

    def test_tuples_roundtrip(self):
        for node in (("station", 17), (3, 0), ("a", ("b", 1))):
            assert decode_node(encode_node(node)) == node

    def test_unserialisable_key_rejected(self):
        with pytest.raises(TypeError):
            encode_node(object())


class TestComponentEnvelopes:
    def test_partition_roundtrip_with_tuple_nodes(self):
        partition = Partition.from_assignment(
            {(1, 0): 1, (1, 1): 1, (2, 0): 2, ("s", 3): 2}
        )
        assert roundtrip(partition) == partition

    def test_cleaning_report(self, small_result):
        report = small_result.cleaning_report
        back = roundtrip(report)
        assert back == report
        assert experiment_table1(back).text == experiment_table1(report).text

    def test_selection_result(self, small_result):
        selection = small_result.selection
        back = roundtrip(selection)
        assert back == selection
        assert back.selected_cluster_ids == selection.selected_cluster_ids
        assert back.rejection_counts() == selection.rejection_counts()

    def test_louvain_result(self, small_result):
        back = roundtrip(small_result.basic)
        assert back == small_result.basic
        assert isinstance(back, LouvainResult)
        assert back.levels == small_result.basic.levels

    def test_temporal_result(self, small_result):
        back = roundtrip(small_result.day)
        assert back == small_result.day
        assert isinstance(back, TemporalCommunityResult)

    def test_selected_network(self, small_result):
        network = small_result.network
        back = roundtrip(network)
        assert back.stations == network.stations
        assert back.trips == network.trips
        assert back.stats() == network.stats()

    def test_wrong_envelope_type_rejected(self, small_result):
        with pytest.raises(ValueError):
            SelectionResult.from_dict(small_result.basic.to_dict())
        with pytest.raises(TypeError):
            CleaningReport.from_dict("not a dict")


class TestReportingEnvelopes:
    def test_experiment_output_roundtrip(self, small_result):
        output = experiment_table4(small_result)
        back = roundtrip(output)
        assert back == output
        assert [c.to_dict() for c in back.comparisons()] == [
            c.to_dict() for c in output.comparisons()
        ]

    def test_comparison_roundtrip(self):
        item = Comparison("table4", "modularity", 0.25, 0.26)
        assert Comparison.from_dict(item.to_dict()) == item


class TestExpansionEnvelope:
    def test_byte_stable_roundtrip(self, small_result):
        blob = canonical_json(small_result.to_dict())
        back = ExpansionResult.from_dict(json.loads(blob))
        assert canonical_json(back.to_dict()) == blob

    def test_headline_preserved(self, small_result):
        back = roundtrip(small_result)
        assert back.headline() == small_result.headline()
        assert back.n_new_stations == small_result.n_new_stations
        assert back.n_total_stations == small_result.n_total_stations

    def test_every_table_renders_identically(self, small_result):
        back = roundtrip(small_result)
        assert (
            experiment_table1(back.cleaning_report).text
            == experiment_table1(small_result.cleaning_report).text
        )
        for experiment in (
            experiment_table2,
            experiment_table3,
            experiment_table4,
            experiment_table5,
            experiment_table6,
        ):
            assert experiment(back).text == experiment(small_result).text

    def test_rebalancing_runs_on_roundtripped_network(self, small_result):
        back = roundtrip(small_result)
        original = plan_weekend_rebalancing(
            small_result.network, small_result.day.station_partition, 40
        )
        served = plan_weekend_rebalancing(
            back.network, back.day.station_partition, 40
        )
        assert served.to_dict() == original.to_dict()

    def test_summary_views_carry_counts(self, small_result):
        back = roundtrip(small_result)
        assert back.cleaned.n_rentals == small_result.cleaned.n_rentals
        assert back.candidates.n_candidates == small_result.candidates.n_candidates
        assert back.candidates.stats() == small_result.candidates.stats()


@pytest.mark.slow
class TestGoldenHeadline:
    """The envelope's headline block vs the pinned golden fixture."""

    def test_paper_envelope_headline_matches_goldens(self, paper_result):
        goldens = json.loads(GOLDEN_PATH.read_text())
        envelope = paper_result.to_dict()
        assert envelope["headline"] == goldens
        back = ExpansionResult.from_dict(json.loads(json.dumps(envelope)))
        assert back.headline() == goldens
