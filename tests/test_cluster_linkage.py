"""Tests for from-scratch HAC, with scipy as the oracle."""

import pytest

np = pytest.importorskip("numpy")
from scipy.cluster.hierarchy import fcluster, linkage as scipy_linkage
from scipy.spatial.distance import squareform

from repro.cluster import (
    LINKAGE_AVERAGE,
    LINKAGE_COMPLETE,
    LINKAGE_SINGLE,
    cluster_at_threshold,
    linkage_cluster,
)
from repro.exceptions import ClusteringError


def random_matrix(rng: np.random.Generator, n: int) -> np.ndarray:
    points = rng.uniform(0.0, 100.0, size=(n, 2))
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


def partition_signature(clusters: list[list[int]]) -> set[frozenset]:
    return {frozenset(cluster) for cluster in clusters}


def scipy_cut(matrix: np.ndarray, method: str, threshold: float) -> set[frozenset]:
    condensed = squareform(matrix, checks=False)
    links = scipy_linkage(condensed, method=method)
    labels = fcluster(links, t=threshold, criterion="distance")
    groups: dict[int, set[int]] = {}
    for index, label in enumerate(labels):
        groups.setdefault(label, set()).add(index)
    return {frozenset(group) for group in groups.values()}


class TestAgainstScipy:
    @pytest.mark.parametrize("method", ["complete", "single", "average"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_threshold_cut_matches_scipy(self, method, seed):
        rng = np.random.default_rng(seed)
        matrix = random_matrix(rng, 40)
        for threshold in (5.0, 15.0, 40.0):
            ours = partition_signature(
                cluster_at_threshold(matrix, threshold, method)
            )
            theirs = scipy_cut(matrix, method, threshold)
            assert ours == theirs, f"{method} cut at {threshold} differs"

    @pytest.mark.parametrize("method", ["complete", "single", "average"])
    def test_merge_heights_match_scipy(self, method):
        rng = np.random.default_rng(42)
        matrix = random_matrix(rng, 25)
        dendrogram = linkage_cluster(matrix, method)
        ours = sorted(merge.height for merge in dendrogram.merges)
        condensed = squareform(matrix, checks=False)
        theirs = sorted(scipy_linkage(condensed, method=method)[:, 2])
        assert np.allclose(ours, theirs)


class TestDendrogram:
    def test_single_point(self):
        dendrogram = linkage_cluster(np.zeros((1, 1)))
        assert dendrogram.merges == ()
        assert dendrogram.cut(1.0) == [[0]]

    def test_two_points(self):
        matrix = np.array([[0.0, 3.0], [3.0, 0.0]])
        dendrogram = linkage_cluster(matrix)
        assert len(dendrogram.merges) == 1
        assert dendrogram.merges[0].height == 3.0
        assert dendrogram.cut(2.9) == [[0], [1]]
        assert dendrogram.cut(3.0) == [[0, 1]]

    def test_cut_at_zero_keeps_singletons(self):
        rng = np.random.default_rng(5)
        matrix = random_matrix(rng, 10)
        assert len(linkage_cluster(matrix).cut(0.0)) == 10

    def test_cut_at_infinity_is_one_cluster(self):
        rng = np.random.default_rng(5)
        matrix = random_matrix(rng, 10)
        clusters = linkage_cluster(matrix).cut(float("inf"))
        assert len(clusters) == 1
        assert sorted(clusters[0]) == list(range(10))

    def test_complete_linkage_diameter_guarantee(self):
        rng = np.random.default_rng(9)
        matrix = random_matrix(rng, 30)
        threshold = 20.0
        for cluster in cluster_at_threshold(matrix, threshold, LINKAGE_COMPLETE):
            for i in cluster:
                for j in cluster:
                    assert matrix[i, j] <= threshold + 1e-9

    def test_single_vs_complete_cluster_counts(self):
        # Single linkage chains; complete linkage fragments — single
        # can never produce more clusters at the same threshold.
        rng = np.random.default_rng(3)
        matrix = random_matrix(rng, 30)
        threshold = 12.0
        n_single = len(cluster_at_threshold(matrix, threshold, LINKAGE_SINGLE))
        n_complete = len(cluster_at_threshold(matrix, threshold, LINKAGE_COMPLETE))
        assert n_single <= n_complete

    def test_average_between_single_and_complete(self):
        rng = np.random.default_rng(13)
        matrix = random_matrix(rng, 30)
        threshold = 12.0
        n_single = len(cluster_at_threshold(matrix, threshold, LINKAGE_SINGLE))
        n_average = len(cluster_at_threshold(matrix, threshold, LINKAGE_AVERAGE))
        n_complete = len(cluster_at_threshold(matrix, threshold, LINKAGE_COMPLETE))
        assert n_single <= n_average <= n_complete


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(ClusteringError):
            linkage_cluster(np.zeros((2, 3)))

    def test_rejects_asymmetric(self):
        matrix = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ClusteringError):
            linkage_cluster(matrix)

    def test_rejects_negative(self):
        matrix = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ClusteringError):
            linkage_cluster(matrix)

    def test_rejects_empty(self):
        with pytest.raises(ClusteringError):
            linkage_cluster(np.zeros((0, 0)))

    def test_rejects_unknown_linkage(self):
        with pytest.raises(ClusteringError):
            linkage_cluster(np.zeros((2, 2)), "ward")
