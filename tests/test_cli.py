"""Tests for the command-line interface.

The CLI is exercised with the reduced dataset by monkeypatching the
generator's default configuration — the full paper-scale run is covered
by the integration tests.
"""

import pytest

from repro import cli
from repro.synth import SyntheticMobyGenerator
from tests.conftest import HAVE_NUMPY, small_generator_config

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="synthetic dataset generation needs numpy"
)


@pytest.fixture(autouse=True)
def small_scale(monkeypatch):
    """Make every CLI invocation use the fast reduced dataset."""
    original_init = SyntheticMobyGenerator.__init__

    def patched(self, seed=7, config=None):
        if config is None:
            config = small_generator_config(seed=seed)
        original_init(self, seed=seed, config=config)

    monkeypatch.setattr(SyntheticMobyGenerator, "__init__", patched)


@needs_numpy
class TestGenerateAndClean:
    def test_generate_writes_csvs(self, tmp_path, capsys):
        code = cli.main(["generate", "--seed", "11", "--out", str(tmp_path / "data")])
        assert code == 0
        assert (tmp_path / "data" / "locations.csv").exists()
        assert (tmp_path / "data" / "rentals.csv").exists()
        assert "wrote" in capsys.readouterr().out

    def test_clean_roundtrip(self, tmp_path, capsys):
        cli.main(["generate", "--seed", "11", "--out", str(tmp_path / "data")])
        code = cli.main(
            [
                "clean",
                "--data", str(tmp_path / "data"),
                "--out", str(tmp_path / "cleaned"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert (tmp_path / "cleaned" / "rentals.csv").exists()


@needs_numpy
class TestRun:
    def test_run_prints_all_tables(self, capsys, tmp_path):
        code = cli.main(
            ["run", "--seed", "11", "--figures", str(tmp_path / "figs")]
        )
        assert code == 0
        out = capsys.readouterr().out
        for table in ("TABLE I", "TABLE II", "TABLE III", "TABLE IV",
                      "TABLE V", "TABLE VI"):
            assert table in out
        assert (tmp_path / "figs" / "fig2_selected_map.svg").exists()
        assert (tmp_path / "figs" / "fig3_gbasic.svg").exists()

    def test_run_over_csv_data(self, capsys, tmp_path):
        cli.main(["generate", "--seed", "11", "--out", str(tmp_path / "data")])
        capsys.readouterr()
        code = cli.main(["run", "--data", str(tmp_path / "data")])
        assert code == 0
        assert "TABLE VI" in capsys.readouterr().out


@needs_numpy
class TestSweep:
    def test_sweep_end_to_end(self, tmp_path, capsys):
        cli.main(["generate", "--seed", "11", "--out", str(tmp_path / "data")])
        capsys.readouterr()
        code = cli.main(
            [
                "sweep",
                "--data", str(tmp_path / "data"),
                "--set", "temporal.coupling=0.05,0.25",
                "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SCENARIO SWEEP (2 configs)" in out
        assert "temporal.coupling=0.05" in out
        assert "temporal.coupling=0.25" in out

    def test_sweep_defaults_to_single_paper_config(self, capsys):
        code = cli.main(["sweep", "--seed", "11"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SCENARIO SWEEP (1 configs)" in out
        assert "paper defaults" in out

    def test_bad_axis_rejected(self):
        from repro.exceptions import ConfigError

        with pytest.raises(ConfigError):
            cli.main(["sweep", "--seed", "11", "--set", "coupling"])

    def test_duplicate_axis_rejected(self):
        from repro.exceptions import ConfigError

        with pytest.raises(ConfigError):
            cli.main(
                [
                    "sweep", "--seed", "11",
                    "--set", "temporal.coupling=0.05",
                    "--set", "temporal.coupling=0.25",
                ]
            )


@needs_numpy
class TestCacheDir:
    def test_second_run_skips_every_stage(self, tmp_path, capsys, monkeypatch):
        from repro.pipeline import runner as runner_module

        cli.main(["generate", "--seed", "11", "--out", str(tmp_path / "data")])
        calls = {"count": 0}
        original = runner_module.project_candidate_flow

        def counting(*args, **kwargs):
            calls["count"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(runner_module, "project_candidate_flow", counting)
        argv = [
            "run",
            "--data", str(tmp_path / "data"),
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert cli.main(argv) == 0
        assert calls["count"] == 1
        capsys.readouterr()
        # Warm run: every stage comes from the on-disk cache.
        assert cli.main(argv) == 0
        assert calls["count"] == 1
        assert "TABLE VI" in capsys.readouterr().out


@needs_numpy
class TestRebalance:
    def test_plan_printed(self, capsys):
        code = cli.main(["rebalance", "--seed", "11", "--fleet", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "COMMUNITY DEMAND PROFILE" in out
        assert "bikes move" in out


@needs_numpy
class TestJsonFormat:
    """``--format json`` prints the canonical service envelope."""

    def test_run_json_envelope(self, capsys):
        import json

        assert cli.main(["run", "--seed", "11", "--format", "json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["type"] == "ResultEnvelope"
        assert envelope["spec"]["outputs"] == ["run"]
        headline = envelope["outputs"]["run"]["headline"]
        assert headline["table1_dataset"]["cleaned_rentals"] > 0

    def test_run_json_matches_python_service_bytes(self, capsys):
        from repro.service import (
            DatasetRef,
            ExpansionService,
            ScenarioSpec,
            canonical_envelope,
        )

        assert cli.main(["run", "--seed", "11", "--format", "json"]) == 0
        printed = capsys.readouterr().out
        with ExpansionService() as service:
            envelope = service.run(
                ScenarioSpec(dataset=DatasetRef.synthetic(11)), timeout=600
            )
        assert printed == canonical_envelope(envelope) + "\n"

    def test_sweep_json_envelope(self, capsys):
        import json

        assert cli.main(
            [
                "sweep", "--seed", "11",
                "--set", "temporal.coupling=0.05,0.25",
                "--format", "json",
            ]
        ) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert len(envelope["outputs"]["sweep"]["scenarios"]) == 2

    def test_rebalance_json_envelope(self, capsys):
        import json

        assert cli.main(
            ["rebalance", "--seed", "11", "--fleet", "40", "--format", "json"]
        ) == 0
        envelope = json.loads(capsys.readouterr().out)
        plan = envelope["outputs"]["rebalance"]["plan"]
        assert plan["type"] == "RebalancingPlan"

    def test_report_json_envelope(self, capsys):
        import json

        assert cli.main(
            ["report", "--seed", "11", "--out", "/dev/null", "--format", "json"]
        ) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["outputs"]["report"]["markdown"].startswith("#")


class TestServeParser:
    def test_serve_arguments_parse(self):
        args = cli._build_parser().parse_args(
            [
                "serve", "--port", "0", "--cache-bytes", "1048576",
                "--cache-entries", "32", "--workers", "3",
            ]
        )
        assert args.command == "serve"
        assert args.cache_bytes == 1_048_576
        assert args.cache_entries == 32
        assert args.workers == 3

    @needs_numpy
    def test_run_accepts_cache_limits(self, tmp_path):
        assert cli.main(
            [
                "run", "--seed", "11",
                "--cache-dir", str(tmp_path / "cache"),
                "--cache-entries", "3",
            ]
        ) == 0
        # Only the 3 most recent of the 7 stage pickles survive.
        assert len(list((tmp_path / "cache").glob("*.pkl"))) == 3


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main(["frobnicate"])


@needs_numpy
class TestStoreDir:
    def test_run_persists_everything_under_one_tree(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert cli.main(["run", "--seed", "11", "--store-dir", str(store)]) == 0
        capsys.readouterr()
        assert list((store / "stage").glob("*.pkl"))
        assert list((store / "results").glob("*.json"))
        assert list((store / "jobs").glob("*.json"))
        # A second run over the same store is pure lookup: the envelope
        # comes from the results store, byte-identical.
        assert cli.main(
            ["run", "--seed", "11", "--store-dir", str(store), "--format", "json"]
        ) == 0
        envelope = capsys.readouterr().out
        stored = sorted((store / "results").glob("*.json"))[0].read_text()
        import json

        first = json.loads(envelope)
        assert (store / "results" / f"{first['fingerprint']}.json").read_text() == (
            envelope.rstrip("\n")
        )
        assert stored  # the tree holds canonical envelopes

    def test_sharded_backend_via_flag(self, tmp_path, capsys):
        store = tmp_path / "store"
        code = cli.main(
            ["run", "--seed", "11", "--store-dir", str(store),
             "--store-backend", "sharded"]
        )
        assert code == 0
        capsys.readouterr()
        pickles = list((store / "stage").rglob("*.pkl"))
        assert pickles
        # Entries landed inside two-hex-char shard directories.
        assert all(p.parent.name != "stage" for p in pickles)
        assert all(len(p.parent.name) == 2 for p in pickles)

    def test_sweep_datasets_flag_over_store(self, tmp_path, capsys):
        """`repro sweep --datasets` runs over datasets stored in the tree."""
        import json

        from repro.service import ExpansionService
        from repro.synth import SyntheticMobyGenerator

        store = tmp_path / "store"
        with ExpansionService(store_dir=store) as service:
            for name, seed in (("city-a", 11), ("city-b", 12)):
                service.register_dataset(
                    name, SyntheticMobyGenerator(seed=seed).generate()
                )
        code = cli.main(
            ["sweep", "--datasets", "city-a,city-b",
             "--store-dir", str(store), "--format", "json"]
        )
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        sweep = envelope["outputs"]["sweep"]
        assert [d["name"] for d in sweep["datasets"]] == ["city-a", "city-b"]
        assert len(sweep["scenarios"]) == 2

    def test_sweep_unknown_dataset_fails_with_service_error(self, tmp_path):
        from repro.exceptions import ServiceError

        with pytest.raises(ServiceError, match="ghost"):
            cli.main(
                ["sweep", "--datasets", "ghost",
                 "--store-dir", str(tmp_path / "store")]
            )

    def test_store_backend_without_store_dir_rejected(self):
        from repro.exceptions import ConfigError

        with pytest.raises(ConfigError, match="store-dir"):
            cli.main(["run", "--seed", "11", "--store-backend", "sharded"])
