"""Tests for table formatting, experiments and paper comparisons."""

import pytest

from repro.reporting import (
    Comparison,
    PAPER,
    compare,
    comparison_rows,
    experiment_fig5,
    experiment_fig7,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
    experiment_table6,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_structure(self):
        text = format_table(
            ["Measure", "Value"],
            [["#nodes", 1172], ["#trips", 61872]],
            title="TABLE X",
        )
        lines = text.splitlines()
        assert lines[0] == "TABLE X"
        assert lines[1].startswith("+-")
        assert "| #nodes" in text
        assert "1,172" in text

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_float_formatting(self):
        text = format_table(["m", "v"], [["q", 0.254]])
        assert "0.254" in text

    def test_bool_formatting(self):
        text = format_table(["m", "v"], [["ok", True]])
        assert "yes" in text


class TestFormatSeries:
    def test_format(self):
        text = format_series("community 1", ["Mon", "Tue"], [0.5, 0.25])
        assert text == "community 1: Mon=0.500 Tue=0.250"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", ["a"], [1.0, 2.0])


class TestComparison:
    def test_ratio(self):
        item = Comparison("table2", "nodes", 1000.0, 1200.0)
        assert item.ratio == pytest.approx(1.2)
        assert item.within_factor(1.25)
        assert not item.within_factor(1.1)

    def test_within_factor_lower_side(self):
        item = Comparison("t", "m", 1000.0, 600.0)
        assert item.within_factor(2.0)
        assert not item.within_factor(1.5)

    def test_zero_expected(self):
        item = Comparison("t", "m", 0.0, 0.0)
        assert item.within_factor(2.0)
        item = Comparison("t", "m", 0.0, 5.0)
        assert not item.within_factor(2.0)

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            Comparison("t", "m", 1.0, 1.0).within_factor(0.5)

    def test_compare_filters_to_known_measures(self):
        items = compare("table2", {"nodes": 1100.0, "bogus": 1.0})
        assert [item.measure for item in items] == ["nodes"]
        assert items[0].expected == PAPER["table2"]["nodes"]

    def test_comparison_rows(self):
        rows = comparison_rows([Comparison("t", "m", 2.0, 4.0)])
        assert rows == [("m", 2.0, 4.0, "2.00x")]


class TestPaperConstants:
    def test_all_experiments_present(self):
        assert set(PAPER) == {
            "table1", "table2", "table3", "table4", "table5", "table6"
        }

    def test_paper_internal_consistency(self):
        table3 = PAPER["table3"]
        assert (
            table3["pre_existing_stations"] + table3["selected_stations"]
            == table3["total_stations"]
        )
        assert (
            table3["edges_from_pre_existing"] + table3["edges_from_selected"]
            == table3["total_edges"]
        )


class TestExperimentRunners:
    def test_table1(self, small_result):
        output = experiment_table1(small_result.cleaning_report)
        assert output.experiment == "table1"
        assert "TABLE I" in output.text
        assert output.measured["cleaned_rentals"] < output.measured["original_rentals"]

    def test_table2(self, small_result):
        output = experiment_table2(small_result)
        assert output.measured["trips"] == small_result.cleaned.n_rentals
        assert "#undirected edges" in output.text

    def test_table3(self, small_result):
        output = experiment_table3(small_result)
        assert (
            output.measured["pre_existing_stations"]
            + output.measured["selected_stations"]
            == output.measured["total_stations"]
        )

    def test_table4_5_6(self, small_result):
        for runner, name in (
            (experiment_table4, "table4"),
            (experiment_table5, "table5"),
            (experiment_table6, "table6"),
        ):
            output = runner(small_result)
            assert output.experiment == name
            assert output.measured["n_communities"] >= 1
            assert "modularity" in output.text

    def test_self_containment_recorded(self, small_result):
        output = experiment_table4(small_result)
        assert 0.0 < output.measured["self_containment"] <= 1.0

    def test_fig5(self, small_result):
        output = experiment_fig5(small_result)
        assert output.series
        for values in output.series.values():
            assert len(values) == 7

    def test_fig7(self, small_result):
        output = experiment_fig7(small_result)
        for values in output.series.values():
            assert len(values) == 24

    def test_comparisons_available(self, small_result):
        output = experiment_table2(small_result)
        items = output.comparisons()
        assert {item.measure for item in items} == set(PAPER["table2"])
