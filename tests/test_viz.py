"""Tests for the SVG renderer, palettes, maps and charts."""

import pytest

from repro.viz import (
    COMMUNITY_COLOURS,
    MapProjection,
    SvgCanvas,
    colour_hex,
    colour_name,
    render_candidate_map,
    render_community_map,
    render_profile_chart,
    render_selected_map,
)
from repro.geo import GeoPoint, destination_point

CENTER = GeoPoint(53.3473, -6.2591)


class TestSvgCanvas:
    def test_document_structure(self):
        canvas = SvgCanvas(200, 100)
        canvas.circle(10, 10, 5, fill="#ff0000")
        canvas.line(0, 0, 10, 10)
        canvas.rect(5, 5, 20, 10)
        canvas.text(1, 1, "hello <world> & more")
        text = canvas.to_string()
        assert text.startswith("<svg ")
        assert text.endswith("</svg>")
        assert "<circle" in text and "<line" in text and "<rect" in text
        assert "hello &lt;world&gt; &amp; more" in text

    def test_polyline_and_polygon(self):
        canvas = SvgCanvas(100, 100)
        canvas.polyline([(0, 0), (10, 10), (20, 0)])
        canvas.polygon([(0, 0), (10, 10), (20, 0)], fill="#eee")
        text = canvas.to_string()
        assert "<polyline" in text and "<polygon" in text

    def test_save(self, tmp_path):
        canvas = SvgCanvas(50, 50)
        path = canvas.save(tmp_path / "nested" / "out.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 10)


class TestPalette:
    def test_paper_colour_names(self):
        names = [colour_name(label) for label in range(1, 11)]
        assert names == [
            "Blue", "Orange", "Green", "Red", "Purple",
            "Brown", "Pink", "Gray", "Olive", "Cyan",
        ]

    def test_cycling(self):
        assert colour_name(11) == colour_name(1)
        assert colour_hex(12) == colour_hex(2)

    def test_hex_format(self):
        for label in range(1, len(COMMUNITY_COLOURS) + 1):
            value = colour_hex(label)
            assert value.startswith("#") and len(value) == 7


class TestMapProjection:
    def test_points_land_inside_canvas(self):
        points = [
            destination_point(CENTER, bearing, 1_000.0)
            for bearing in range(0, 360, 30)
        ]
        projection = MapProjection(points, width=500.0)
        for point in points:
            x, y = projection.to_canvas(point)
            assert 0 <= x <= 500
            assert 0 <= y <= projection.height

    def test_north_is_up(self):
        north = destination_point(CENTER, 0.0, 500.0)
        south = destination_point(CENTER, 180.0, 500.0)
        projection = MapProjection([north, south, CENTER])
        assert projection.to_canvas(north)[1] < projection.to_canvas(south)[1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MapProjection([])


class TestFigureRenderers:
    def test_candidate_map(self, small_result):
        network = small_result.candidates
        points = {
            ("station", sid): p for sid, p in network.station_points.items()
        }
        points.update(
            (("cluster", cid), p)
            for cid, p in network.cluster_centroids.items()
        )
        canvas = render_candidate_map(points, network.flow)
        text = canvas.to_string()
        assert text.count("<circle") == len(points)

    def test_selected_map(self, small_result):
        canvas = render_selected_map(small_result.network)
        text = canvas.to_string()
        assert text.count("<circle") == len(small_result.network.stations)

    def test_community_map(self, small_result):
        canvas = render_community_map(
            small_result.network, small_result.basic.partition, "G_Basic"
        )
        assert "G_Basic" in canvas.to_string()

    def test_profile_chart(self):
        profiles = {1: [0.1] * 7, 2: [0.2] * 7}
        canvas = render_profile_chart(
            profiles, ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"], "Fig 5"
        )
        text = canvas.to_string()
        assert text.count("<rect") >= 14  # at least one bar per (comm, day)

    def test_profile_chart_validates_lengths(self):
        with pytest.raises(ValueError):
            render_profile_chart({1: [0.5] * 6}, ["a"] * 7, "bad")

    def test_profile_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            render_profile_chart({}, [], "bad")
