"""Tests for the weighted/directed graph projections."""

import pytest

from repro.exceptions import GraphError
from repro.graphdb import (
    DirectedGraph,
    PropertyGraph,
    WeightedGraph,
    project_weighted,
)


def triangle() -> WeightedGraph:
    return WeightedGraph.from_edges([("a", "b", 2.0), ("b", "c", 3.0), ("a", "c", 1.0)])


class TestWeightedGraph:
    def test_edge_accumulation(self):
        graph = WeightedGraph()
        graph.add_edge("a", "b", 1.0)
        graph.add_edge("a", "b", 2.5)
        assert graph.weight("a", "b") == 3.5
        assert graph.weight("b", "a") == 3.5

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            WeightedGraph().add_edge("a", "b", -1.0)

    def test_isolated_node(self):
        graph = WeightedGraph()
        graph.add_node("lonely")
        assert "lonely" in graph
        assert graph.degree("lonely") == 0
        assert graph.strength("lonely") == 0.0

    def test_self_loop_strength_counts_twice(self):
        graph = WeightedGraph()
        graph.add_edge("a", "a", 2.0)
        assert graph.strength("a") == 4.0
        assert graph.total_weight == 2.0

    def test_total_weight(self):
        assert triangle().total_weight == 6.0

    def test_edge_count_with_loops(self):
        graph = triangle()
        graph.add_edge("a", "a", 1.0)
        assert graph.edge_count == 4

    def test_edges_iterates_each_once(self):
        edges = list(triangle().edges())
        assert len(edges) == 3
        keys = {frozenset((u, v)) for u, v, _ in edges}
        assert keys == {
            frozenset(("a", "b")), frozenset(("b", "c")), frozenset(("a", "c"))
        }

    def test_degree_excludes_loops(self):
        graph = triangle()
        graph.add_edge("a", "a", 5.0)
        assert graph.degree("a") == 2

    def test_subgraph(self):
        graph = triangle()
        graph.add_edge("a", "a", 1.5)
        sub = graph.subgraph(["a", "b", "ghost"])
        assert sub.node_count == 2
        assert sub.weight("a", "b") == 2.0
        assert sub.weight("a", "a") == 1.5
        assert not sub.has_edge("b", "c")

    def test_copy_is_independent(self):
        graph = triangle()
        clone = graph.copy()
        clone.add_edge("a", "b", 10.0)
        assert graph.weight("a", "b") == 2.0

    def test_connected_components(self):
        graph = triangle()
        graph.add_edge("x", "y", 1.0)
        graph.add_node("z")
        components = graph.connected_components()
        assert [len(c) for c in components] == [3, 2, 1]

    def test_from_edges(self):
        graph = WeightedGraph.from_edges([(1, 2, 4.0)])
        assert graph.node_count == 2


class TestDirectedGraph:
    def test_directionality(self):
        graph = DirectedGraph()
        graph.add_edge("a", "b", 3.0)
        assert graph.weight("a", "b") == 3.0
        assert graph.weight("b", "a") == 0.0

    def test_strengths_and_flux(self):
        graph = DirectedGraph()
        graph.add_edge("a", "b", 3.0)
        graph.add_edge("b", "a", 1.0)
        graph.add_edge("c", "a", 2.0)
        assert graph.out_strength("a") == 3.0
        assert graph.in_strength("a") == 3.0
        assert graph.flux("a") == 0.0
        assert graph.flux("b") == pytest.approx(2.0)
        assert graph.flux("c") == -2.0

    def test_edge_count(self):
        graph = DirectedGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        graph.add_edge("a", "a")
        assert graph.edge_count == 3

    def test_undirected_collapse(self):
        graph = DirectedGraph()
        graph.add_edge("a", "b", 3.0)
        graph.add_edge("b", "a", 1.0)
        graph.add_edge("c", "c", 2.0)
        undirected = graph.undirected()
        assert undirected.weight("a", "b") == 4.0
        assert undirected.weight("c", "c") == 2.0
        assert undirected.edge_count == 2

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            DirectedGraph().add_edge("a", "b", -0.5)


class TestProjection:
    def test_project_counts_relationships(self):
        store = PropertyGraph()
        a = store.create_node().node_id
        b = store.create_node().node_id
        store.create_relationship(a, "TRIP", b)
        store.create_relationship(a, "TRIP", b)
        store.create_relationship(b, "TRIP", a)
        store.create_relationship(a, "OTHER", b)
        flow = project_weighted(store, "TRIP")
        assert flow.weight(a, b) == 2.0
        assert flow.weight(b, a) == 1.0

    def test_project_with_custom_weight_and_key(self):
        store = PropertyGraph()
        a = store.create_node().node_id
        b = store.create_node().node_id
        store.create_relationship(a, "TRIP", b, {"n": 5.0})
        flow = project_weighted(
            store, "TRIP",
            node_key=lambda node_id: f"node{node_id}",
            weight=lambda rel: rel["n"],
        )
        assert flow.weight("node0", "node1") == 5.0
