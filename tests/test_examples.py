"""Smoke tests: every example script runs end to end.

The examples are patched onto the reduced dataset (like the CLI tests)
so the whole set runs in seconds; full-scale behaviour is covered by
the integration tests and benches.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

# Synthetic generation is numpy-only by design (np.exp demand
# surfaces are not bit-reproducible in pure Python).
pytest.importorskip("numpy")

from repro.synth import SyntheticMobyGenerator
from tests.conftest import small_generator_config

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


@pytest.fixture(autouse=True)
def small_scale(monkeypatch, tmp_path):
    """Reduced dataset + isolated working directory for outputs."""
    original_init = SyntheticMobyGenerator.__init__

    def patched(self, seed=7, config=None):
        if config is None:
            config = small_generator_config(seed=seed)
        original_init(self, seed=seed, config=config)

    monkeypatch.setattr(SyntheticMobyGenerator, "__init__", patched)
    (tmp_path / "examples" / "output").mkdir(parents=True)
    monkeypatch.chdir(tmp_path)


def _run_example(name: str) -> None:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "expansion_planning",
        "temporal_communities",
        "rebalancing",
        "network_health",
        "service_simulation",
        "demand_forecasting",
        "scenario_sweep",
    ],
)
def test_example_runs(name, capsys):
    _run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_expansion_planning_writes_map(capsys):
    _run_example("expansion_planning")
    assert Path("examples/output/expansion_map.svg").exists()


def test_temporal_communities_writes_charts(capsys):
    _run_example("temporal_communities")
    for artifact in (
        "communities_gbasic.svg",
        "communities_gday.svg",
        "communities_ghour.svg",
        "profiles_daily.svg",
        "profiles_hourly.svg",
    ):
        assert Path("examples/output") / artifact
        assert (Path("examples/output") / artifact).exists()
