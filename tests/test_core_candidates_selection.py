"""Tests for candidate generation and Algorithm 1."""

import pytest

from repro.config import ClusteringConfig, SelectionConfig
from repro.core import (
    REJECT_BELOW_DEGREE,
    REJECT_NEAR_CANDIDATE,
    REJECT_NEAR_STATION,
    build_candidate_network,
    select_stations,
)
from repro.data import LocationRecord, MobyDataset, RentalRecord
from repro.geo import GeoPoint, destination_point, haversine_m

CENTER = GeoPoint(53.3473, -6.2591)


def at(bearing: float, distance: float) -> GeoPoint:
    return destination_point(CENTER, bearing, distance)


def _rental(rental_id: int, origin: int, destination: int) -> RentalRecord:
    from datetime import datetime

    return RentalRecord(
        rental_id=rental_id,
        bike_id=1,
        started_at=datetime(2020, 6, 1, 9),
        ended_at=datetime(2020, 6, 1, 9, 20),
        rental_location_id=origin,
        return_location_id=destination,
    )


def tiny_world() -> MobyDataset:
    """Two stations, one strong far cluster, one near-station location.

    Locations: 0, 1 stations; 2 within 50 m of station 0; 3 and 4 form a
    cluster 600 m out; 5 is a weak singleton 1.5 km out.
    """
    locations = [
        LocationRecord(0, CENTER.lat, CENTER.lon, is_station=True, name="S0"),
        LocationRecord(1, *at(90.0, 400.0).as_tuple(), is_station=True, name="S1"),
        LocationRecord(2, *at(0.0, 30.0).as_tuple()),
        LocationRecord(3, *at(180.0, 600.0).as_tuple()),
        LocationRecord(4, *at(180.0, 640.0).as_tuple()),
        LocationRecord(5, *at(270.0, 1_500.0).as_tuple()),
    ]
    rentals = [
        _rental(1, 0, 1),
        _rental(2, 1, 0),
        _rental(3, 2, 3),   # station-0 group -> cluster A
        _rental(4, 3, 0),
        _rental(5, 4, 1),
        _rental(6, 3, 1),
        _rental(7, 5, 0),   # singleton -> station 0
    ]
    return MobyDataset.from_records(locations, rentals)


class TestCandidateNetwork:
    @pytest.fixture
    def network(self):
        return build_candidate_network(tiny_world())

    def test_preassignment(self, network):
        assert network.location_to_group[2] == ("station", 0)

    def test_cluster_formation(self, network):
        group_3 = network.location_to_group[3]
        group_4 = network.location_to_group[4]
        assert group_3 == group_4
        assert group_3[0] == "cluster"
        assert network.location_to_group[5][0] == "cluster"
        assert network.n_candidates == 2

    def test_flow_weights(self, network):
        cluster_a = network.location_to_group[3]
        assert network.flow.weight(("station", 0), cluster_a) == 1.0
        assert network.flow.weight(cluster_a, ("station", 0)) == 1.0

    def test_stats(self, network):
        stats = network.stats()
        assert stats.n_nodes == 4
        assert stats.n_trips == 7
        assert stats.n_directed_edges == stats.n_directed_edges_no_loops
        rows = dict(stats.as_rows())
        assert rows["#trips"] == 7

    def test_group_point(self, network):
        assert network.group_point(("station", 0)) == CENTER
        cluster_a = network.location_to_group[3]
        centroid = network.group_point(cluster_a)
        assert 590.0 < haversine_m(CENTER, centroid) < 650.0

    def test_custom_config(self):
        # A huge pre-assignment radius swallows everything.
        network = build_candidate_network(
            tiny_world(), ClusteringConfig(preassign_radius_m=5_000.0)
        )
        assert network.n_candidates == 0


class TestSelection:
    def test_far_strong_cluster_selected(self):
        network = build_candidate_network(tiny_world())
        result = select_stations(network, SelectionConfig())
        # Min station degree is 2 (each station links to the other and
        # cluster A).  Cluster A has degree 2, is 600 m out: selected.
        cluster_a = network.location_to_group[3][1]
        assert cluster_a in result.selected_cluster_ids

    def test_weak_candidate_rejected_by_degree(self):
        network = build_candidate_network(tiny_world())
        result = select_stations(network, SelectionConfig())
        singleton = network.location_to_group[5][1]
        entry = next(s for s in result.scores if s.cluster_id == singleton)
        assert entry.rejection == REJECT_BELOW_DEGREE
        assert entry.score == 0

    def test_near_station_rejected(self):
        network = build_candidate_network(tiny_world())
        result = select_stations(
            network, SelectionConfig(secondary_distance_m=700.0)
        )
        cluster_a = network.location_to_group[3][1]
        entry = next(s for s in result.scores if s.cluster_id == cluster_a)
        assert entry.rejection == REJECT_NEAR_STATION

    def test_degree_threshold_override(self):
        network = build_candidate_network(tiny_world())
        result = select_stations(
            network, SelectionConfig(degree_threshold=100)
        )
        assert result.n_selected == 0
        assert result.degree_threshold == 100

    def test_scores_cover_every_candidate(self):
        network = build_candidate_network(tiny_world())
        result = select_stations(network)
        assert {s.cluster_id for s in result.scores} == set(
            network.cluster_centroids
        )

    def test_selected_sorted_by_score(self, small_result):
        scores = {
            s.cluster_id: s.score for s in small_result.selection.scores
        }
        order = small_result.selection.selected_cluster_ids
        values = [scores[cid] for cid in order]
        assert values == sorted(values, reverse=True)

    def test_mutual_knockout(self, small_result):
        # After Algorithm 1, surviving candidates are pairwise >= 250 m
        # apart and >= 250 m from every pre-existing station.
        network = small_result.candidates
        selected = small_result.selection.selected_cluster_ids
        points = [network.cluster_centroids[cid] for cid in selected]
        for i, a in enumerate(points):
            for b in points[i + 1:]:
                assert haversine_m(a, b) >= 250.0 - 1e-6
            for station_point in network.station_points.values():
                assert haversine_m(a, station_point) >= 250.0 - 1e-6

    def test_rejection_counts_sum(self, small_result):
        result = small_result.selection
        assert result.n_selected + sum(
            result.rejection_counts().values()
        ) == len(result.scores)
