"""Tests for the degree-preserving null model and assortativity."""

import networkx as nx
import pytest

from repro.community import (
    Partition,
    louvain,
    partition_significance,
    rewire_degree_preserving,
)
from repro.exceptions import CommunityError
from repro.graphdb import WeightedGraph
from repro.metrics import degree_assortativity


def ring_of_cliques(n_cliques: int = 4, k: int = 5) -> WeightedGraph:
    graph = WeightedGraph()
    for c in range(n_cliques):
        base = c * k
        for i in range(k):
            for j in range(i + 1, k):
                graph.add_edge(base + i, base + j, 1.0)
        graph.add_edge(base, ((c + 1) % n_cliques) * k, 1.0)
    return graph


class TestRewiring:
    def test_degrees_preserved(self):
        graph = ring_of_cliques()
        rewired = rewire_degree_preserving(graph, seed=3)
        for node in graph.nodes():
            assert rewired.degree(node) == graph.degree(node)

    def test_edge_count_preserved(self):
        graph = ring_of_cliques()
        rewired = rewire_degree_preserving(graph, seed=3)
        assert rewired.edge_count == graph.edge_count

    def test_actually_rewires(self):
        graph = ring_of_cliques(5, 6)
        rewired = rewire_degree_preserving(graph, seed=3)
        original_edges = {frozenset((u, v)) for u, v, _ in graph.edges()}
        new_edges = {frozenset((u, v)) for u, v, _ in rewired.edges()}
        assert original_edges != new_edges

    def test_no_new_self_loops(self):
        graph = ring_of_cliques()
        rewired = rewire_degree_preserving(graph, seed=5)
        assert not any(u == v for u, v, _ in rewired.edges())

    def test_self_loops_kept(self):
        graph = ring_of_cliques()
        graph.add_edge(0, 0, 2.0)
        rewired = rewire_degree_preserving(graph, seed=5)
        assert rewired.weight(0, 0) == 2.0

    def test_tiny_graph_copied(self):
        graph = WeightedGraph.from_edges([(0, 1, 1.0)])
        rewired = rewire_degree_preserving(graph)
        assert rewired.weight(0, 1) == 1.0

    def test_deterministic(self):
        graph = ring_of_cliques()
        a = rewire_degree_preserving(graph, seed=9)
        b = rewire_degree_preserving(graph, seed=9)
        assert {frozenset((u, v)) for u, v, _ in a.edges()} == {
            frozenset((u, v)) for u, v, _ in b.edges()
        }


class TestSignificance:
    def test_real_structure_significant(self):
        graph = ring_of_cliques(5, 6)
        partition = louvain(graph).partition
        result = partition_significance(graph, partition, n_samples=8)
        assert result.observed > result.null_mean
        assert result.z_score > 2.0
        assert result.is_significant

    def test_random_graph_not_strongly_significant(self):
        nxg = nx.gnm_random_graph(30, 120, seed=1)
        graph = WeightedGraph()
        for node in nxg.nodes():
            graph.add_node(node)
        for u, v in nxg.edges():
            graph.add_edge(u, v, 1.0)
        partition = louvain(graph).partition
        result = partition_significance(graph, partition, n_samples=8)
        # A dense random graph's best partition is what the null gives:
        # the z-score must be far below a planted structure's.
        planted = partition_significance(
            ring_of_cliques(5, 6),
            louvain(ring_of_cliques(5, 6)).partition,
            n_samples=8,
        )
        assert result.z_score < planted.z_score

    def test_needs_samples(self):
        graph = ring_of_cliques()
        partition = Partition.from_assignment(
            {node: 0 for node in graph.nodes()}
        )
        with pytest.raises(CommunityError):
            partition_significance(graph, partition, n_samples=1)


class TestAssortativity:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_networkx(self, seed):
        # nx's assortativity coefficient computes through numpy.
        pytest.importorskip("numpy")
        nxg = nx.gnm_random_graph(25, 60, seed=seed)
        graph = WeightedGraph()
        for node in nxg.nodes():
            graph.add_node(node)
        for u, v in nxg.edges():
            graph.add_edge(u, v, 1.0)
        ours = degree_assortativity(graph)
        theirs = nx.degree_assortativity_coefficient(nxg)
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_star_is_disassortative(self):
        graph = WeightedGraph.from_edges(
            [(0, i, 1.0) for i in range(1, 8)] + [(1, 2, 1.0)]
        )
        assert degree_assortativity(graph) < 0

    def test_regular_graph_returns_zero(self):
        # A cycle: every degree is 2, no variance.
        graph = WeightedGraph.from_edges(
            [(i, (i + 1) % 6, 1.0) for i in range(6)]
        )
        assert degree_assortativity(graph) == 0.0

    def test_too_small_returns_zero(self):
        graph = WeightedGraph.from_edges([(0, 1, 1.0)])
        assert degree_assortativity(graph) == 0.0
