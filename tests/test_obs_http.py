"""Observability over HTTP: /v1/metrics, trace ids, the access log.

A minimal Prometheus text-format parser lives here (``parse_metrics``)
so the exposition tests validate the actual wire format — every
non-comment line must parse, histogram bucket series must be
cumulative and consistent with ``_count`` — instead of substring
checks.  Trace-id propagation is followed end to end: request header →
response header → job document → on-disk journal → opt-in envelope
``meta`` block.
"""

import io
import json
import re
import urllib.error
import urllib.request

import pytest

from repro.cli import _build_parser, main
from repro.obs import REQUIRED_KEYS, TRACE_HEADER, JsonEventLog, is_trace_id
from repro.service import ExpansionService, make_server

RUN_BODY = {"dataset": {"kind": "named", "name": "small"}}

_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (NaN|[+-]Inf|[0-9eE.+-]+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"')


def parse_metrics(text):
    """Parse Prometheus text format; asserts every line is well-formed.

    Returns ``(types, samples)``: metric name -> declared type, and
    sample name -> ``{label tuple: value}`` (histogram ``_bucket`` /
    ``_sum`` / ``_count`` series keep their suffixed names).
    """
    types: dict[str, str] = {}
    samples: dict[str, dict[tuple, float]] = {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            assert len(line.split(" ", 3)) == 4, f"bad HELP line: {line!r}"
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), line
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
        else:
            match = _SAMPLE_LINE.match(line)
            assert match, f"unparseable exposition line: {line!r}"
            name, label_blob, raw_value = match.groups()
            labels = tuple(_LABEL_PAIR.findall(label_blob or ""))
            value = float(raw_value.replace("Inf", "inf"))
            family = samples.setdefault(name, {})
            assert labels not in family, f"duplicate sample: {line!r}"
            family[labels] = value
    return types, samples


@pytest.fixture(scope="module")
def obs_server(small_raw, tmp_path_factory):
    """A store-backed server with metrics, journal and access log."""
    log_buffer = io.StringIO()
    service = ExpansionService(
        store_dir=tmp_path_factory.mktemp("obs-store"),
        max_workers=2,
        healthz_ttl=0,
        event_log=JsonEventLog(log_buffer),
    )
    service.register_dataset("small", small_raw)
    server = make_server(
        service, port=0, access_log=service.event_log
    ).start_background()
    yield server, service, log_buffer
    server.stop()
    service.close()


def request(server, path, body=None, method=None, headers=None):
    """(status, bytes, response headers) for one exchange."""
    data = json.dumps(body).encode() if body is not None else None
    all_headers = {"Content-Type": "application/json"} if data else {}
    all_headers.update(headers or {})
    req = urllib.request.Request(
        server.url + path, data=data, method=method, headers=all_headers
    )
    try:
        with urllib.request.urlopen(req, timeout=300) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


class TestMetricsEndpoint:
    def test_exposition_parses_and_covers_every_layer(self, obs_server):
        server, _, _ = obs_server
        status, _, _ = request(server, "/v1/runs", body=RUN_BODY, method="POST")
        assert status == 200
        status, body, headers = request(server, "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        types, samples = parse_metrics(body.decode())
        # One instrument from every instrumented layer.
        assert types["repro_http_requests_total"] == "counter"
        assert types["repro_http_request_seconds"] == "histogram"
        assert types["repro_pipeline_executions_total"] == "counter"
        assert types["repro_stage_seconds"] == "histogram"
        assert types["repro_jobs_current"] == "gauge"  # job-table callback
        assert types["repro_store_entries"] == "gauge"  # namespace callback
        assert samples["repro_pipeline_executions_total"][()] >= 1
        # Store metrics carry one series per namespace of the store.
        store_namespaces = {
            dict(labels)["namespace"]
            for labels in samples["repro_store_entries"]
        }
        assert {"results", "datasets", "stage", "jobs"} <= store_namespaces

    def test_request_metrics_label_route_templates_not_raw_paths(
        self, obs_server
    ):
        server, _, _ = obs_server
        request(server, "/v1/jobs/job-000001")
        request(server, "/v1/jobs/job-999999")  # 404s count too
        _, body, _ = request(server, "/v1/metrics")
        _, samples = parse_metrics(body.decode())
        routes = {
            dict(labels)["route"]
            for labels in samples["repro_http_requests_total"]
        }
        assert "/v1/jobs/<id>" in routes
        assert not any("job-" in route for route in routes)

    def test_histogram_buckets_cumulative_and_consistent_with_count(
        self, obs_server
    ):
        server, _, _ = obs_server
        request(server, "/v1/healthz")
        _, body, _ = request(server, "/v1/metrics")
        types, samples = parse_metrics(body.decode())
        for name, kind in types.items():
            if kind != "histogram":
                continue
            series: dict[tuple, list] = {}
            for labels, value in samples[f"{name}_bucket"].items():
                le = dict(labels)["le"]
                rest = tuple(pair for pair in labels if pair[0] != "le")
                series.setdefault(rest, []).append((float(le), value))
            assert series, f"histogram {name} exposed no buckets"
            for rest, buckets in series.items():
                buckets.sort()
                counts = [count for _, count in buckets]
                assert counts == sorted(counts), (name, rest)
                assert buckets[-1][0] == float("inf")
                assert counts[-1] == samples[f"{name}_count"][rest]

    def test_metrics_disabled_service_answers_404(
        self, small_raw, tmp_path_factory
    ):
        service = ExpansionService(metrics=False)
        server = make_server(service, port=0).start_background()
        try:
            status, body, _ = request(server, "/v1/metrics")
            assert status == 404
            assert "disabled" in json.loads(body)["error"]
            status, _, _ = request(server, "/v1/healthz")
            assert status == 200  # healthz never depends on the registry
        finally:
            server.stop()
            service.close()


class TestTraceIds:
    def test_client_trace_id_propagates_to_job_journal_and_meta(
        self, obs_server
    ):
        server, service, _ = obs_server
        claimed = "feedface" * 4
        status, body, headers = request(
            server,
            "/v1/runs",
            body={**RUN_BODY, "meta": True},
            method="POST",
            headers={TRACE_HEADER: claimed},
        )
        assert status == 200
        assert headers[TRACE_HEADER] == claimed
        envelope = json.loads(body)
        assert envelope["meta"]["trace_id"] == claimed
        job_id = envelope["meta"]["job_id"]
        # The job document serves the trace id...
        status, body, _ = request(server, f"/v1/jobs/{job_id}")
        assert json.loads(body)["trace_id"] == claimed
        # ...and the on-disk journal holds it durably.
        journalled = json.loads(
            service.jobstore.namespace.get(job_id).decode()
        )
        assert journalled["trace_id"] == claimed

    def test_server_mints_a_trace_id_when_the_client_sends_none(
        self, obs_server
    ):
        server, _, _ = obs_server
        _, _, headers = request(server, "/v1/healthz")
        assert is_trace_id(headers[TRACE_HEADER])
        assert len(headers[TRACE_HEADER]) == 32

    def test_garbage_trace_header_is_replaced_not_echoed(self, obs_server):
        server, _, _ = obs_server
        _, _, headers = request(
            server, "/v1/healthz", headers={TRACE_HEADER: "NOT A TRACE ID"}
        )
        assert headers[TRACE_HEADER] != "NOT A TRACE ID"
        assert is_trace_id(headers[TRACE_HEADER])

    def test_default_run_response_carries_no_meta_block(self, obs_server):
        """Without the opt-in the body stays the stored canonical bytes."""
        server, service, _ = obs_server
        status, body, _ = request(
            server, "/v1/runs", body=RUN_BODY, method="POST"
        )
        assert status == 200
        envelope = json.loads(body)
        assert "meta" not in envelope
        stored = service.results.raw(envelope["fingerprint"])
        assert body.decode() == stored


class TestAccessLog:
    def test_every_line_is_single_line_json_with_required_keys(
        self, obs_server
    ):
        server, _, log_buffer = obs_server
        # A battery covering success, 404, submission and scrape routes.
        request(server, "/v1/healthz")
        request(server, "/v1/jobs")
        request(server, "/v1/jobs/job-999999")
        request(server, "/v1/datasets")
        request(server, "/v1/nope")
        request(server, "/v1/runs", body=RUN_BODY, method="POST")
        request(server, "/v1/metrics")
        lines = log_buffer.getvalue().splitlines()
        assert len(lines) >= 7
        events = []
        for line in lines:
            assert line == line.strip() and "\n" not in line
            record = json.loads(line)  # raises if any line is torn
            for key in REQUIRED_KEYS:
                assert key in record, f"{key} missing from {record}"
            events.append(record)
        http_events = [r for r in events if r["event"] == "http"]
        job_events = [r for r in events if r["event"] == "job"]
        assert {r["status"] for r in http_events} >= {200, 404}
        for record in http_events:
            assert record["method"] in ("GET", "POST", "PUT", "DELETE")
            assert record["route"].startswith(("/v1/", "(unmatched)"))
            assert record["duration_s"] >= 0
            assert is_trace_id(record["trace_id"])
        # Job transitions ride the same log, joined by trace id.
        assert {r["status"] for r in job_events} >= {"pending", "done"}
        done = [r for r in job_events if r["status"] == "done"]
        assert any(
            r["trace_id"] == done[0]["trace_id"] for r in http_events
        ), "job transitions must join an http line via the trace id"


class TestHealthzTtl:
    def test_constructor_ttl_surfaces_in_healthz(self, obs_server):
        server, _, _ = obs_server
        _, body, _ = request(server, "/v1/healthz")
        assert json.loads(body)["healthz_ttl_s"] == 0

    def test_serve_parser_accepts_the_observability_flags(self):
        args = _build_parser().parse_args(
            [
                "serve",
                "--healthz-ttl", "0.5",
                "--access-log", "-",
                "--no-metrics",
            ]
        )
        assert args.healthz_ttl == 0.5
        assert args.access_log == "-"
        assert args.no_metrics is True


class TestMetricsCli:
    def test_metrics_subcommand_prints_the_exposition(
        self, obs_server, capsys
    ):
        server, _, _ = obs_server
        assert main(["metrics", "--url", server.url]) == 0
        out = capsys.readouterr().out
        types, _ = parse_metrics(out)
        assert "repro_http_requests_total" in types

    def test_metrics_subcommand_reports_unreachable_server(self, capsys):
        assert main(["metrics", "--url", "http://127.0.0.1:9"]) == 1
        assert "cannot reach" in capsys.readouterr().err
