"""Chaos battery: injected faults, SIGKILL crash-recovery, degradation.

Three escalation levels:

* in-process fault injection (``REPRO_FAULT_*`` → every store namespace
  misbehaves on a seeded schedule) — envelopes must come out
  byte-identical to a fault-free run;
* a real ``repro serve`` subprocess killed with SIGKILL mid-job and
  restarted over the same ``--store-dir`` — the journal must re-queue
  the interrupted job and the recovered envelope must match the
  fault-free reference byte for byte;
* degraded modes — a full admission queue answers 429, an open circuit
  breaker answers 503 on writes while warm reads, healthz and metrics
  stay served, a blown deadline reports 504/``timeout``.

``REPRO_STORE_BACKEND`` (CI chaos leg) narrows the subprocess battery
to one backend; locally both ``dir`` and ``sharded`` run.
"""

import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.exceptions import JobTimeoutError
from repro.service import ExpansionService, canonical_envelope, make_server

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: The seeded schedule the whole battery runs under.  Seed 0 at a 10-15%
#: transient rate is verified to stay within the default retry budget.
FAULT_ENV = {
    "REPRO_FAULT_SEED": "0",
    "REPRO_FAULT_RATE": "0.1",
    "REPRO_FAULT_LATENCY_S": "0.01",
    "REPRO_FAULT_LATENCY_RATE": "0.1",
}

RUN_BODY = {"dataset": {"kind": "named", "name": "chaos"}}


def chaos_backends():
    override = os.environ.get("REPRO_STORE_BACKEND")
    return [override] if override else ["dir", "sharded"]


def http(url, body=None, method=None):
    """(status, bytes, headers) for one exchange; errors not raised."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=300) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def reference_envelope(small_raw):
    """The fault-free canonical envelope every chaos leg compares to."""
    service = ExpansionService()
    service.register_dataset("chaos", small_raw)
    try:
        return canonical_envelope(service.run(RUN_BODY))
    finally:
        service.close()


class TestFaultedEnvelopeIdentity:
    def test_envelopes_byte_identical_under_faults(
        self, small_raw, tmp_path, monkeypatch
    ):
        reference = reference_envelope(small_raw)
        monkeypatch.setenv("REPRO_FAULT_SEED", "0")
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.15")
        faulted = ExpansionService(store_dir=tmp_path / "faulted")
        try:
            faulted.register_dataset("chaos", small_raw)
            envelope = canonical_envelope(faulted.run(RUN_BODY))
            store = faulted.stats()["store"]
            retries = sum(
                block.get("retries", 0)
                for block in store.values()
                if isinstance(block, dict)
            )
        finally:
            faulted.close()
        assert envelope == reference
        # The identical bytes were *not* a quiet run: the schedule hit.
        assert retries > 0


def boot_serve(store_dir, backend, fault_env):
    """Start a ``repro serve`` subprocess; returns (proc, base_url)."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--store-dir", str(store_dir),
            "--store-backend", backend,
            "--workers", "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": SRC, **fault_env},
    )
    banner = proc.stdout.readline()
    base = banner.strip().rsplit(" ", 1)[-1]
    if not base.startswith("http://"):
        proc.kill()
        proc.wait(timeout=30)
        raise AssertionError(f"unexpected serve banner: {banner!r}")
    return proc, base


class TestSigkillRecovery:
    @pytest.mark.parametrize("backend", chaos_backends())
    def test_recovered_envelope_is_byte_identical(
        self, backend, small_raw, tmp_path
    ):
        reference = reference_envelope(small_raw)
        store_dir = tmp_path / "store"

        proc, base = boot_serve(store_dir, backend, FAULT_ENV)
        try:
            status, _, _ = http(
                f"{base}/v1/datasets/chaos", body=small_raw.to_dict(),
                method="PUT",
            )
            assert status == 201
            _, body, _ = http(
                f"{base}/v1/runs", body={**RUN_BODY, "wait": False}
            )
            job = json.loads(body)
            job_id, fingerprint = job["job_id"], job["fingerprint"]
            # Catch the job mid-run so the SIGKILL lands on live work.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                _, job_body, _ = http(f"{base}/v1/jobs/{job_id}")
                state = json.loads(job_body)["status"]
                if state != "pending":
                    break
                time.sleep(0.005)
            assert state in ("running", "done")
        finally:
            proc.kill()  # SIGKILL: no shutdown hooks, no final journal
            proc.wait(timeout=30)

        proc, base = boot_serve(store_dir, backend, FAULT_ENV)
        try:
            deadline = time.monotonic() + 180
            while True:
                status, job_body, _ = http(f"{base}/v1/jobs/{job_id}")
                assert status == 200, "journal lost the job across SIGKILL"
                state = json.loads(job_body)["status"]
                if state == "done":
                    break
                assert state in ("pending", "running"), (
                    f"recovered job reached {state!r}: "
                    f"{json.loads(job_body).get('error')}"
                )
                assert time.monotonic() < deadline, "recovery never finished"
                time.sleep(0.05)
            status, result, _ = http(f"{base}/v1/results/{fingerprint}")
            assert status == 200
            assert result.decode() == reference
        finally:
            proc.kill()
            proc.wait(timeout=30)


class TestSigkillMidAppend:
    """SIGKILL during ``PATCH /v1/datasets`` append traffic.

    The append path deletes the metadata anchor before rewriting the
    rental log, so whatever instant the process dies, a restart over
    the same store directory must observe one of exactly three states:
    the dataset after some *whole* number of appends (digest and row
    count advance together along the client-computed chain), or a torn
    entry that reads as absent and is restored by a plain re-push.
    Never new rows under an old digest, never a half-applied batch.
    """

    BATCH = 2000
    BATCHES = 8

    @pytest.mark.parametrize("backend", chaos_backends())
    def test_append_is_atomic_across_sigkill(
        self, backend, small_raw, tmp_path
    ):
        from datetime import timedelta

        from repro.data.records import RentalRecord
        from repro.pipeline.fingerprint import chain_digest, rentals_digest

        template = next(
            r for r in small_raw.rentals()
            if r.rental_location_id is not None
            and r.return_location_id is not None
        )
        base_id = (small_raw.max_rental_id() or 0) + 1
        batches = []
        for index in range(self.BATCHES):
            start_id = base_id + index * self.BATCH
            batches.append([
                RentalRecord(
                    rental_id=start_id + offset,
                    bike_id=template.bike_id,
                    started_at=template.started_at
                    + timedelta(seconds=offset),
                    ended_at=template.ended_at + timedelta(seconds=offset),
                    rental_location_id=template.rental_location_id,
                    return_location_id=template.return_location_id,
                )
                for offset in range(self.BATCH)
            ])

        store_dir = tmp_path / "store"
        proc, base = boot_serve(store_dir, backend, {})
        try:
            status, body, _ = http(
                f"{base}/v1/datasets/chaos", body=small_raw.to_dict(),
                method="PUT",
            )
            assert status == 201
            put_digest = json.loads(body)["digest"]

            # The digest/row-count chain every legal crash state lies on.
            chain = [(put_digest, small_raw.n_rentals)]
            for batch in batches:
                chain.append((
                    chain_digest(chain[-1][0], rentals_digest(batch)),
                    chain[-1][1] + len(batch),
                ))

            def patch_forever():
                for batch in batches:
                    rows = [
                        [r.rental_id, r.bike_id, r.started_at.isoformat(),
                         r.ended_at.isoformat(), r.rental_location_id,
                         r.return_location_id]
                        for r in batch
                    ]
                    try:
                        http(
                            f"{base}/v1/datasets/chaos",
                            body={"rentals": rows}, method="PATCH",
                        )
                    except OSError:
                        return  # the process died under us — expected

            appender = threading.Thread(target=patch_forever, daemon=True)
            appender.start()
            time.sleep(0.15)  # let the SIGKILL land on live append work
        finally:
            proc.kill()
            proc.wait(timeout=30)
        appender.join(timeout=30)

        proc, base = boot_serve(store_dir, backend, {})
        try:
            status, body, headers = http(f"{base}/v1/datasets/chaos")
            if status == 404:
                # Torn entry: reads as absent everywhere; a plain
                # re-push restores it.
                status, body, _ = http(
                    f"{base}/v1/datasets/chaos", body=small_raw.to_dict(),
                    method="PUT",
                )
                assert status == 201
                restored = json.loads(body)["digest"]
                status, body, headers = http(f"{base}/v1/datasets/chaos")
                assert status == 200
                assert json.loads(body)["digest"] == restored
                assert headers["ETag"].strip('"') == restored
            else:
                assert status == 200
                meta = json.loads(body)
                survivors = dict(chain)
                assert meta["digest"] in survivors, (
                    "restart observed a digest off the append chain"
                )
                assert meta["n_rentals"] == survivors[meta["digest"]], (
                    "digest and row count disagree: half-applied append"
                )
        finally:
            proc.kill()
            proc.wait(timeout=30)


class TestOverloadShedding:
    def test_full_admission_queue_answers_429(self, small_raw):
        service = ExpansionService(max_workers=1, max_queue=2)
        service.register_dataset("chaos", small_raw)
        release = threading.Event()
        original = service._build_envelope

        def gated(*args, **kwargs):
            release.wait(60)
            return original(*args, **kwargs)

        service._build_envelope = gated
        server = make_server(service, port=0).start_background()
        try:
            # Three distinct fingerprints: same dataset, different outputs.
            for outputs in (["run"], ["report"]):
                status, _, _ = http(
                    f"{server.url}/v1/runs",
                    body={**RUN_BODY, "outputs": outputs, "wait": False},
                )
                assert status == 202
            status, body, headers = http(
                f"{server.url}/v1/runs",
                body={**RUN_BODY, "outputs": ["rebalance"], "wait": False},
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert "admission queue is full" in json.loads(body)["error"]
            assert service.jobs_shed == 1
            # A duplicate of an admitted job still joins it: dedup is
            # not load, so it is never shed.
            status, _, _ = http(
                f"{server.url}/v1/runs",
                body={**RUN_BODY, "outputs": ["run"], "wait": False},
            )
            assert status == 202
        finally:
            release.set()
            server.stop()
            service.close()


class TestBreakerDegradedMode:
    def test_open_breaker_keeps_warm_reads_and_503s_writes(self, small_raw):
        service = ExpansionService()
        service.register_dataset("chaos", small_raw)
        server = make_server(service, port=0).start_background()
        try:
            status, warm, _ = http(f"{server.url}/v1/runs", body=RUN_BODY)
            assert status == 200
            fingerprint = json.loads(warm)["fingerprint"]

            service.breaker.trip()
            status, body, headers = http(
                f"{server.url}/v1/runs", body=RUN_BODY
            )
            assert status == 503
            assert int(headers["Retry-After"]) >= 1
            assert "read-only" in json.loads(body)["error"]
            status, _, _ = http(
                f"{server.url}/v1/datasets/other",
                body=small_raw.to_dict(), method="PUT",
            )
            assert status == 503

            # Read-only mode still serves everything already warm.
            status, result, _ = http(f"{server.url}/v1/results/{fingerprint}")
            assert status == 200
            assert result == warm
            status, _, _ = http(f"{server.url}/v1/datasets/chaos")
            assert status == 200
            status, health, _ = http(f"{server.url}/v1/healthz")
            assert status == 200
            payload = json.loads(health)
            assert payload["status"] == "degraded"
            assert payload["breaker"]["state"] == "open"
            status, scrape, _ = http(f"{server.url}/v1/metrics")
            assert status == 200
            assert "repro_circuit_breaker_state 2" in scrape.decode()

            service.breaker.reset()
            status, _, _ = http(f"{server.url}/v1/runs", body=RUN_BODY)
            assert status == 200
            _, health, _ = http(f"{server.url}/v1/healthz")
            assert json.loads(health)["status"] == "ok"
        finally:
            server.stop()
            service.close()


class TestDeadlines:
    def test_blown_deadline_answers_504_and_timeout_status(self, small_raw):
        service = ExpansionService()
        service.register_dataset("chaos", small_raw)
        server = make_server(service, port=0).start_background()
        try:
            status, body, _ = http(
                f"{server.url}/v1/runs",
                body={**RUN_BODY, "deadline_s": 1e-9},
            )
            assert status == 504
            payload = json.loads(body)
            assert payload["status"] == "timeout"
            assert "deadline" in payload["error"]
            status, job_body, _ = http(
                f"{server.url}/v1/jobs/{payload['job_id']}"
            )
            assert status == 200
            assert json.loads(job_body)["status"] == "timeout"
        finally:
            server.stop()
            service.close()

    def test_stale_heartbeat_trips_the_watchdog(self, small_raw):
        service = ExpansionService(
            max_workers=1, watchdog_stale_s=0.2, watchdog_interval_s=0.05
        )
        service.register_dataset("chaos", small_raw)
        release = threading.Event()
        original = service._build_envelope

        def wedged(*args, **kwargs):
            # A worker stuck *inside* a stage never reaches the next
            # cancel poll, so only the watchdog can reclaim it.
            release.wait(30)
            return original(*args, **kwargs)

        service._build_envelope = wedged
        try:
            job = service.submit(RUN_BODY)
            with pytest.raises(JobTimeoutError, match="stale"):
                job.wait(timeout=15)
            assert job.status == "timeout"
            assert service.watchdog_failures == 1
            release.set()
            # First-wins terminal states: the worker finishing late
            # must not resurrect the timed-out job.
            time.sleep(0.1)
            assert job.status == "timeout"
        finally:
            release.set()
            service.close()
