"""Tests for the network metrics, using networkx as the oracle."""

import networkx as nx
import pytest

from repro.graphdb import DirectedGraph, WeightedGraph
from repro.metrics import (
    average_clustering,
    betweenness_centrality,
    closeness_centrality,
    clustering_coefficients,
    degrees,
    fluxes,
    gini,
    min_degree,
    pagerank,
    strengths,
    summarise,
    summarise_flow,
)


def random_graph(seed: int, weighted: bool = False) -> tuple[WeightedGraph, nx.Graph]:
    nxg = nx.gnm_random_graph(20, 45, seed=seed)
    graph = WeightedGraph()
    for node in nxg.nodes():
        graph.add_node(node)
    for index, (u, v) in enumerate(nxg.edges()):
        weight = 1.0 + (index % 4) if weighted else 1.0
        nxg[u][v]["weight"] = weight
        graph.add_edge(u, v, weight)
    return graph, nxg


class TestDegreeMetrics:
    def test_degrees_and_strengths(self):
        graph = WeightedGraph.from_edges([("a", "b", 2.0), ("a", "c", 3.0)])
        assert degrees(graph) == {"a": 2, "b": 1, "c": 1}
        assert strengths(graph)["a"] == 5.0

    def test_min_degree(self):
        graph = WeightedGraph.from_edges([("a", "b", 1.0), ("a", "c", 1.0)])
        assert min_degree(graph) == 1
        assert min_degree(graph, ["a"]) == 2

    def test_min_degree_empty_raises(self):
        graph = WeightedGraph()
        with pytest.raises(ValueError):
            min_degree(graph)

    def test_flux(self):
        flow = DirectedGraph()
        flow.add_edge("a", "b", 5.0)
        flow.add_edge("b", "a", 2.0)
        assert fluxes(flow) == {"a": -3.0, "b": 3.0}


class TestBetweenness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_unweighted_matches_networkx(self, seed):
        graph, nxg = random_graph(seed)
        ours = betweenness_centrality(graph)
        theirs = nx.betweenness_centrality(nxg)
        for node in nxg.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-9)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_weighted_matches_networkx(self, seed):
        graph, nxg = random_graph(seed, weighted=True)
        # networkx uses the distance attribute directly; our weights are
        # flows, so give networkx the reciprocal as distance.
        for u, v in nxg.edges():
            nxg[u][v]["distance"] = 1.0 / nxg[u][v]["weight"]
        ours = betweenness_centrality(graph, use_weights=True)
        theirs = nx.betweenness_centrality(nxg, weight="distance")
        for node in nxg.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-6)

    def test_path_graph_center(self):
        graph = WeightedGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        scores = betweenness_centrality(graph)
        assert scores[1] == pytest.approx(1.0)
        assert scores[0] == 0.0

    def test_unnormalised(self):
        graph = WeightedGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        scores = betweenness_centrality(graph, normalised=False)
        assert scores[1] == pytest.approx(1.0)  # one pair routes through


class TestCloseness:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_networkx(self, seed):
        graph, nxg = random_graph(seed)
        ours = closeness_centrality(graph)
        theirs = nx.closeness_centrality(nxg)
        for node in nxg.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-9)

    def test_disconnected_component_correction(self):
        graph = WeightedGraph.from_edges([(0, 1, 1.0), (2, 3, 1.0)])
        nxg = nx.Graph([(0, 1), (2, 3)])
        ours = closeness_centrality(graph)
        theirs = nx.closeness_centrality(nxg)
        for node in nxg.nodes():
            assert ours[node] == pytest.approx(theirs[node])

    def test_isolated_node_zero(self):
        graph = WeightedGraph()
        graph.add_node("x")
        assert closeness_centrality(graph)["x"] == 0.0


class TestPageRank:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_networkx(self, seed):
        pytest.importorskip("numpy")  # nx.pagerank computes via scipy/numpy
        graph, nxg = random_graph(seed, weighted=True)
        ours = pagerank(graph)
        theirs = nx.pagerank(nxg, weight="weight", tol=1e-12, max_iter=500)
        for node in nxg.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-6)

    def test_sums_to_one(self):
        graph, _ = random_graph(2)
        assert sum(pagerank(graph).values()) == pytest.approx(1.0, abs=1e-6)

    def test_dangling_nodes_handled(self):
        graph = WeightedGraph.from_edges([(0, 1, 1.0)])
        graph.add_node(2)  # isolated
        ranks = pagerank(graph)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)
        assert ranks[2] > 0

    def test_empty_graph(self):
        assert pagerank(WeightedGraph()) == {}


class TestClusteringCoefficient:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        graph, nxg = random_graph(seed)
        ours = clustering_coefficients(graph)
        theirs = nx.clustering(nxg)
        for node in nxg.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-12)

    def test_triangle_is_one(self):
        graph = WeightedGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
        assert clustering_coefficients(graph) == {0: 1.0, 1: 1.0, 2: 1.0}
        assert average_clustering(graph) == 1.0

    def test_low_degree_zero(self):
        graph = WeightedGraph.from_edges([(0, 1, 1.0)])
        assert clustering_coefficients(graph)[0] == 0.0

    def test_average_of_empty_graph(self):
        assert average_clustering(WeightedGraph()) == 0.0


class TestGini:
    def test_uniform_is_zero(self):
        assert gini([5.0] * 10) == pytest.approx(0.0, abs=1e-12)

    def test_single_winner_approaches_one(self):
        values = [0.0] * 99 + [100.0]
        assert gini(values) == pytest.approx(0.99, abs=1e-9)

    def test_known_value(self):
        # gini([1,2,3,4]) = (2*(1*1+2*2+3*3+4*4)/(4*10)) - 5/4 = 0.25
        assert gini([1, 2, 3, 4]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([1.0, -2.0])

    def test_scale_invariant(self):
        values = [1.0, 5.0, 2.0, 9.0]
        assert gini(values) == pytest.approx(gini([v * 7 for v in values]))


class TestSummaries:
    def test_summarise(self):
        graph = WeightedGraph.from_edges(
            [(0, 1, 2.0), (1, 2, 1.0), (0, 2, 1.0), (3, 4, 1.0)]
        )
        summary = summarise(graph)
        assert summary.n_nodes == 5
        assert summary.n_edges == 4
        assert summary.n_components == 2
        assert summary.largest_component == 3
        assert summary.total_weight == 5.0

    def test_summarise_empty(self):
        summary = summarise(WeightedGraph())
        assert summary.n_nodes == 0

    def test_summarise_flow(self):
        flow = DirectedGraph()
        flow.add_edge(0, 1, 3.0)
        flow.add_edge(1, 1, 2.0)
        summary = summarise_flow(flow)
        assert summary.n_self_loops == 1
        assert summary.total_trips == 5.0
        assert summary.max_abs_flux == 3.0
