"""Unit tests for repro.geo.distance (haversine et al.)."""

import math

import pytest

from repro.config import EARTH_RADIUS_M
from repro.geo import (
    GeoPoint,
    bearing_deg,
    destination_point,
    equirectangular_m,
    haversine_m,
    local_projector,
    meters_per_degree,
)

DUBLIN = GeoPoint(53.3473, -6.2591)
PHOENIX_PARK = GeoPoint(53.3558, -6.3298)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(DUBLIN, DUBLIN) == 0.0

    def test_symmetry(self):
        assert haversine_m(DUBLIN, PHOENIX_PARK) == pytest.approx(
            haversine_m(PHOENIX_PARK, DUBLIN)
        )

    def test_known_city_scale_distance(self):
        # O'Connell Bridge to Phoenix Park gate is ~4.8 km.
        distance = haversine_m(DUBLIN, PHOENIX_PARK)
        assert 4_000 < distance < 6_000

    def test_equator_degree(self):
        # One degree of longitude at the equator ~= 111.19 km.
        d = haversine_m(GeoPoint(0.0, 0.0), GeoPoint(0.0, 1.0))
        assert d == pytest.approx(math.pi * EARTH_RADIUS_M / 180.0, rel=1e-9)

    def test_antipodal_does_not_crash(self):
        d = haversine_m(GeoPoint(0.0, 0.0), GeoPoint(0.0, 180.0))
        assert d == pytest.approx(math.pi * EARTH_RADIUS_M, rel=1e-6)

    def test_small_distance_accuracy(self):
        # 50 m at Dublin latitude.
        a = GeoPoint(53.35, -6.26)
        b = destination_point(a, 90.0, 50.0)
        assert haversine_m(a, b) == pytest.approx(50.0, abs=0.01)


class TestEquirectangular:
    def test_close_to_haversine_at_city_scale(self):
        approx = equirectangular_m(DUBLIN, PHOENIX_PARK)
        exact = haversine_m(DUBLIN, PHOENIX_PARK)
        assert approx == pytest.approx(exact, rel=1e-3)

    def test_zero(self):
        assert equirectangular_m(DUBLIN, DUBLIN) == 0.0


class TestBearing:
    def test_due_north(self):
        assert bearing_deg(GeoPoint(0.0, 0.0), GeoPoint(1.0, 0.0)) == pytest.approx(0.0)

    def test_due_east(self):
        assert bearing_deg(GeoPoint(0.0, 0.0), GeoPoint(0.0, 1.0)) == pytest.approx(90.0)

    def test_due_south(self):
        assert bearing_deg(GeoPoint(1.0, 0.0), GeoPoint(0.0, 0.0)) == pytest.approx(180.0)

    def test_range(self):
        bearing = bearing_deg(DUBLIN, PHOENIX_PARK)
        assert 0.0 <= bearing < 360.0


class TestDestinationPoint:
    @pytest.mark.parametrize("bearing", [0.0, 45.0, 90.0, 180.0, 270.0])
    def test_round_trip_distance(self, bearing):
        target = destination_point(DUBLIN, bearing, 1_000.0)
        assert haversine_m(DUBLIN, target) == pytest.approx(1_000.0, abs=0.01)

    def test_north_increases_latitude(self):
        target = destination_point(DUBLIN, 0.0, 500.0)
        assert target.lat > DUBLIN.lat
        assert target.lon == pytest.approx(DUBLIN.lon, abs=1e-9)

    def test_zero_distance_is_identity(self):
        target = destination_point(DUBLIN, 123.0, 0.0)
        assert target.lat == pytest.approx(DUBLIN.lat)
        assert target.lon == pytest.approx(DUBLIN.lon)


class TestMetersPerDegree:
    def test_latitude_constant(self):
        per_lat_a, _ = meters_per_degree(0.0)
        per_lat_b, _ = meters_per_degree(53.0)
        assert per_lat_a == pytest.approx(per_lat_b)

    def test_longitude_shrinks_with_latitude(self):
        _, at_equator = meters_per_degree(0.0)
        _, at_dublin = meters_per_degree(53.35)
        assert at_dublin < at_equator
        assert at_dublin == pytest.approx(at_equator * math.cos(math.radians(53.35)))


class TestLocalProjector:
    def test_origin_maps_to_zero(self):
        project = local_projector(DUBLIN)
        assert project(DUBLIN) == (0.0, 0.0)

    def test_euclidean_matches_haversine_locally(self):
        project = local_projector(DUBLIN)
        other = destination_point(DUBLIN, 37.0, 800.0)
        x, y = project(other)
        assert math.hypot(x, y) == pytest.approx(800.0, rel=2e-3)

    def test_axes_orientation(self):
        project = local_projector(DUBLIN)
        north = destination_point(DUBLIN, 0.0, 100.0)
        east = destination_point(DUBLIN, 90.0, 100.0)
        assert project(north)[1] > 0
        assert project(east)[0] > 0
