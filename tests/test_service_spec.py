"""ScenarioSpec / DatasetRef: validation, canonical fingerprints, JSON."""

import pytest

from repro.exceptions import ConfigError, ServiceError
from repro.service import DatasetRef, ScenarioSpec

DIGEST = "ab" * 32


class TestDatasetRef:
    def test_synthetic_roundtrip(self):
        ref = DatasetRef.synthetic(11)
        assert DatasetRef.from_dict(ref.to_dict()) == ref
        assert ref.to_dict() == {"kind": "synthetic", "seed": 11}

    def test_csv_and_named_roundtrip(self):
        for ref in (DatasetRef.csv("/tmp/data"), DatasetRef.named("x")):
            assert DatasetRef.from_dict(ref.to_dict()) == ref

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError):
            DatasetRef(kind="postgres")

    def test_csv_needs_path(self):
        with pytest.raises(ServiceError):
            DatasetRef(kind="csv")

    def test_named_needs_name(self):
        with pytest.raises(ServiceError):
            DatasetRef(kind="named")


class TestSpecValidation:
    def test_defaults_request_a_run(self):
        spec = ScenarioSpec()
        assert spec.outputs == ("run",)
        assert spec.dataset == DatasetRef.synthetic(7)

    def test_unknown_output_rejected(self):
        with pytest.raises(ServiceError):
            ScenarioSpec(outputs=("run", "forecast"))

    def test_empty_outputs_rejected(self):
        with pytest.raises(ServiceError):
            ScenarioSpec(outputs=())

    def test_duplicate_outputs_rejected(self):
        with pytest.raises(ServiceError):
            ScenarioSpec(outputs=("run", "run"))

    def test_unknown_override_path_rejected(self):
        # The same validation PipelineConfig.derive applies (satellite:
        # unknown section.field keys must fail loudly, never be ignored).
        with pytest.raises(ConfigError):
            ScenarioSpec(overrides={"temporal.bogus": 1.0})
        with pytest.raises(ConfigError):
            ScenarioSpec(overrides={"bogus.coupling": 1.0})

    def test_invalid_override_value_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioSpec(overrides={"temporal.coupling": -1.0})

    def test_invalid_sweep_axis_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioSpec(
                outputs=("sweep",), sweep_axes={"temporal.bogus": [0.1]}
            )
        with pytest.raises(ConfigError):
            ScenarioSpec(
                outputs=("sweep",), sweep_axes={"temporal.coupling": [-5.0]}
            )

    def test_sweep_axes_require_sweep_output(self):
        with pytest.raises(ServiceError):
            ScenarioSpec(sweep_axes={"temporal.coupling": [0.1]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ServiceError):
            ScenarioSpec(outputs=("sweep",), sweep_axes={"temporal.coupling": []})

    def test_nonpositive_fleet_rejected(self):
        with pytest.raises(ServiceError):
            ScenarioSpec(outputs=("rebalance",), fleet_size=0)

    def test_duplicate_override_key_rejected(self):
        with pytest.raises(ServiceError):
            ScenarioSpec(
                overrides=[("temporal.coupling", 0.1), ("temporal.coupling", 0.2)]
            )

    def test_config_applies_overrides(self):
        spec = ScenarioSpec(overrides={"temporal.coupling": 0.2})
        assert spec.config().temporal.coupling == 0.2


class TestFingerprint:
    def test_identical_specs_share_a_fingerprint(self):
        a = ScenarioSpec(overrides={"temporal.coupling": 0.2})
        b = ScenarioSpec(overrides={"temporal.coupling": 0.2})
        assert a.fingerprint(DIGEST) == b.fingerprint(DIGEST)

    def test_override_order_is_canonicalised(self):
        a = ScenarioSpec(
            overrides=[("temporal.coupling", 0.2), ("community.seed", 3)]
        )
        b = ScenarioSpec(
            overrides=[("community.seed", 3), ("temporal.coupling", 0.2)]
        )
        assert a.fingerprint(DIGEST) == b.fingerprint(DIGEST)

    def test_different_overrides_differ(self):
        a = ScenarioSpec(overrides={"temporal.coupling": 0.2})
        b = ScenarioSpec(overrides={"temporal.coupling": 0.3})
        assert a.fingerprint(DIGEST) != b.fingerprint(DIGEST)

    def test_dataset_digest_matters(self):
        spec = ScenarioSpec()
        assert spec.fingerprint(DIGEST) != spec.fingerprint("cd" * 32)

    def test_fleet_size_only_counts_when_rebalancing(self):
        run_a = ScenarioSpec(fleet_size=10)
        run_b = ScenarioSpec(fleet_size=99)
        assert run_a.fingerprint(DIGEST) == run_b.fingerprint(DIGEST)
        reb_a = ScenarioSpec(outputs=("rebalance",), fleet_size=10)
        reb_b = ScenarioSpec(outputs=("rebalance",), fleet_size=99)
        assert reb_a.fingerprint(DIGEST) != reb_b.fingerprint(DIGEST)

    def test_report_title_only_counts_when_reporting(self):
        a = ScenarioSpec(report_title="x")
        b = ScenarioSpec(report_title="y")
        assert a.fingerprint(DIGEST) == b.fingerprint(DIGEST)
        ra = ScenarioSpec(outputs=("report",), report_title="x")
        rb = ScenarioSpec(outputs=("report",), report_title="y")
        assert ra.fingerprint(DIGEST) != rb.fingerprint(DIGEST)


class TestSpecSerialisation:
    def test_roundtrip(self):
        spec = ScenarioSpec(
            dataset=DatasetRef.synthetic(11),
            overrides={"temporal.coupling": 0.2},
            outputs=("run", "sweep", "rebalance", "report"),
            sweep_axes={"community.resolution": [0.8, 1.2]},
            fleet_size=40,
            report_title="t",
        )
        back = ScenarioSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.fingerprint(DIGEST) == spec.fingerprint(DIGEST)

    def test_from_dict_fills_defaults(self):
        spec = ScenarioSpec.from_dict({"type": "ScenarioSpec"})
        assert spec == ScenarioSpec()

    def test_type_tag_is_optional(self):
        # Plain dicts (HTTP bodies, submit({...})) may omit the tag.
        spec = ScenarioSpec.from_dict(
            {"dataset": {"kind": "synthetic", "seed": 11}}
        )
        assert spec.dataset == DatasetRef.synthetic(11)

    def test_wrong_type_tag_rejected(self):
        with pytest.raises(ServiceError):
            ScenarioSpec.from_dict({"type": "Job"})

    def test_output_parameters_omitted_unless_requested(self):
        payload = ScenarioSpec().to_dict()
        assert "fleet_size" not in payload
        assert "sweep_axes" not in payload
        assert "report_title" not in payload
