"""Tests for Girvan-Newman and consensus clustering."""

import networkx as nx
import pytest

from repro.community import (
    consensus_louvain,
    edge_betweenness,
    girvan_newman,
    louvain,
)
from repro.config import CommunityConfig
from repro.exceptions import CommunityError
from repro.graphdb import WeightedGraph


def two_cliques(k: int = 5, bridge_weight: float = 0.5) -> WeightedGraph:
    graph = WeightedGraph()
    for offset in (0, k):
        for i in range(k):
            for j in range(i + 1, k):
                graph.add_edge(offset + i, offset + j, 1.0)
    graph.add_edge(0, k, bridge_weight)
    return graph


class TestEdgeBetweenness:
    def test_matches_networkx_unweighted(self):
        nxg = nx.gnm_random_graph(14, 25, seed=3)
        graph = WeightedGraph()
        for node in nxg.nodes():
            graph.add_node(node)
        for u, v in nxg.edges():
            graph.add_edge(u, v, 1.0)
        ours = edge_betweenness(graph, use_weights=False)
        theirs = nx.edge_betweenness_centrality(nxg, normalized=False)
        for (u, v), value in theirs.items():
            mine = ours.get((u, v), ours.get((v, u), 0.0))
            assert mine == pytest.approx(value, abs=1e-9)

    def test_bridge_has_highest_betweenness(self):
        graph = two_cliques()
        scores = edge_betweenness(graph)
        top = max(scores.items(), key=lambda item: item[1])[0]
        assert set(top) == {0, 5}

    def test_path_graph(self):
        graph = WeightedGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        scores = edge_betweenness(graph, use_weights=False)
        def get(u, v):
            return scores.get((u, v), scores.get((v, u), 0.0))
        assert get(0, 1) == pytest.approx(2.0)  # pairs (0,1), (0,2)
        assert get(1, 2) == pytest.approx(2.0)


class TestGirvanNewman:
    def test_two_cliques(self):
        partition = girvan_newman(two_cliques())
        assert partition.n_communities == 2
        assert partition[0] == partition[4]
        assert partition[5] == partition[9]

    def test_agrees_with_louvain_on_clear_structure(self):
        graph = two_cliques(k=6)
        gn = girvan_newman(graph)
        lv = louvain(graph, CommunityConfig(seed=2)).partition
        assert gn.n_communities == lv.n_communities == 2

    def test_max_communities_early_stop(self):
        partition = girvan_newman(two_cliques(), max_communities=2)
        assert partition.n_communities <= 3

    def test_original_graph_untouched(self):
        graph = two_cliques()
        edges_before = graph.edge_count
        girvan_newman(graph)
        assert graph.edge_count == edges_before

    def test_zero_weight_rejected(self):
        graph = WeightedGraph()
        graph.add_node("a")
        with pytest.raises(CommunityError):
            girvan_newman(graph)


class TestConsensus:
    def test_stable_structure_is_recovered(self):
        graph = two_cliques(k=6)
        result = consensus_louvain(graph, n_runs=6)
        assert result.n_communities == 2
        assert result.stability > 0.95

    def test_stability_reported_between_zero_and_one(self):
        graph = two_cliques()
        result = consensus_louvain(graph, n_runs=4)
        assert 0.0 <= result.stability <= 1.0
        assert result.n_runs == 4

    def test_requires_multiple_runs(self):
        with pytest.raises(CommunityError):
            consensus_louvain(two_cliques(), n_runs=1)

    def test_threshold_validated(self):
        with pytest.raises(CommunityError):
            consensus_louvain(two_cliques(), threshold=0.0)
        with pytest.raises(CommunityError):
            consensus_louvain(two_cliques(), threshold=1.5)

    def test_high_threshold_fragments(self):
        graph = two_cliques(bridge_weight=4.0)
        loose = consensus_louvain(graph, n_runs=6, threshold=0.3)
        strict = consensus_louvain(graph, n_runs=6, threshold=1.0)
        assert strict.n_communities >= loose.n_communities
