"""Tests for the staged pipeline runner: caching, fingerprints,
parallel equivalence, and facade equivalence."""

import pytest

from repro import (
    NetworkExpansionOptimiser,
    PAPER_CONFIG,
    PipelineRunner,
    StageCache,
    config_grid,
    run_sweep,
)
from repro.exceptions import ConfigError, PipelineError
from repro.pipeline import runner as runner_module
from repro.pipeline.cache import MISS
from repro.pipeline.fingerprint import dataset_digest


ALL_STAGES = (
    "clean", "candidates", "selection", "network", "basic", "day", "hour",
)


def _same_result(a, b) -> None:
    assert a.cleaned.n_rentals == b.cleaned.n_rentals
    assert a.candidates.n_candidates == b.candidates.n_candidates
    assert a.selection.n_selected == b.selection.n_selected
    assert sorted(a.network.stations) == sorted(b.network.stations)
    assert a.basic.partition == b.basic.partition
    assert a.basic.modularity == b.basic.modularity
    assert a.day.station_partition == b.day.station_partition
    assert a.day.modularity == b.day.modularity
    assert a.hour.station_partition == b.hour.station_partition
    assert a.hour.modularity == b.hour.modularity


class TestCacheSemantics:
    def test_cold_run_executes_every_stage(self, small_raw):
        runner = PipelineRunner(small_raw)
        runner.run()
        assert runner.executions == {name: 1 for name in ALL_STAGES}

    def test_memoised_within_one_runner(self, small_raw):
        runner = PipelineRunner(small_raw)
        assert runner.stage("candidates") is runner.stage("candidates")
        runner.run()
        assert runner.executions["candidates"] == 1

    def test_warm_run_through_shared_memory_cache(self, small_raw):
        cache = StageCache()
        first = PipelineRunner(small_raw, cache=cache)
        second = PipelineRunner(small_raw, cache=cache)
        result_a = first.run()
        result_b = second.run()
        assert second.executions == {}, "warm run recomputed a stage"
        _same_result(result_a, result_b)

    def test_warm_run_through_disk_cache(self, small_raw, tmp_path):
        result_a = PipelineRunner(small_raw, cache_dir=tmp_path).run()
        warm = PipelineRunner(small_raw, cache_dir=tmp_path)
        result_b = warm.run()
        assert warm.executions == {}
        assert list(tmp_path.glob("*.pkl"))
        _same_result(result_a, result_b)

    def test_corrupt_disk_entry_is_a_miss(self, small_raw, tmp_path):
        runner = PipelineRunner(small_raw, cache_dir=tmp_path)
        runner.stage("clean")
        for pickle_file in tmp_path.glob("*.pkl"):
            pickle_file.write_bytes(b"not a pickle")
        rerun = PipelineRunner(small_raw, cache_dir=tmp_path)
        rerun.stage("clean")
        assert rerun.executions == {"clean": 1}

    def test_lru_eviction(self):
        cache = StageCache(memory_slots=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is MISS
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_disk_eviction_by_entries(self, tmp_path):
        cache = StageCache(tmp_path, memory_slots=0, max_entries=2)
        for key in ("a", "b", "c", "d"):
            cache.put(key, key * 4)
        assert sorted(p.stem for p in tmp_path.glob("*.pkl")) == ["c", "d"]
        assert cache.get("a") is MISS
        assert cache.get("d") == "dddd"
        assert cache.evictions == 2

    def test_disk_eviction_is_lru_not_fifo(self, tmp_path):
        import os
        import time

        cache = StageCache(tmp_path, memory_slots=0, max_entries=2)
        cache.put("old", 1)
        # Backdate "old", then read it: the disk hit must refresh its
        # recency so the *unread* entry is the one evicted.
        past = time.time() - 3600
        os.utime(tmp_path / "old.pkl", (past, past))
        cache.put("middle", 2)
        os.utime(tmp_path / "middle.pkl", (past + 1, past + 1))
        assert cache.get("old") == 1  # refreshes old.pkl's mtime
        cache.put("new", 3)
        assert cache.get("middle") is MISS
        assert cache.get("old") == 1
        assert cache.get("new") == 3

    def test_disk_eviction_by_bytes_keeps_latest(self, tmp_path):
        cache = StageCache(tmp_path, memory_slots=0, max_bytes=1)
        cache.put("a", list(range(100)))
        cache.put("b", list(range(100)))
        # The just-written entry always survives, however tight the cap.
        assert [p.stem for p in tmp_path.glob("*.pkl")] == ["b"]
        assert cache.get("b") == list(range(100))

    def test_unlimited_cache_never_evicts(self, tmp_path):
        cache = StageCache(tmp_path, memory_slots=0)
        for index in range(10):
            cache.put(f"k{index}", index)
        assert len(list(tmp_path.glob("*.pkl"))) == 10
        assert cache.evictions == 0

    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError):
            StageCache(max_bytes=-1)
        with pytest.raises(ValueError):
            StageCache(max_entries=0)


class TestFingerprints:
    def test_config_change_invalidates_only_downstream(self, small_raw):
        base = PipelineRunner(small_raw, PAPER_CONFIG)
        coupled = PipelineRunner(
            small_raw, PAPER_CONFIG.derive({"temporal.coupling": 0.3})
        )
        for unchanged in ("clean", "candidates", "selection", "network", "basic"):
            assert base.key(unchanged) == coupled.key(unchanged)
        assert base.key("day") != coupled.key("day")
        assert base.key("hour") != coupled.key("hour")

    def test_upstream_change_invalidates_whole_cone(self, small_raw):
        base = PipelineRunner(small_raw, PAPER_CONFIG)
        relinked = PipelineRunner(
            small_raw, PAPER_CONFIG.derive({"clustering.linkage": "single"})
        )
        assert base.key("clean") == relinked.key("clean")
        for downstream in ("candidates", "selection", "network", "basic", "day"):
            assert base.key(downstream) != relinked.key(downstream)

    def test_dataset_change_invalidates_everything(self, small_raw):
        base = PipelineRunner(small_raw)
        other = PipelineRunner(small_raw, raw_digest="0" * 64)
        for name in ALL_STAGES:
            assert base.key(name) != other.key(name)

    def test_dataset_digest_is_content_addressed(self, small_raw, tmp_path):
        small_raw.to_csv(tmp_path / "round-trip")
        from repro import MobyDataset

        reloaded = MobyDataset.from_csv(tmp_path / "round-trip")
        assert dataset_digest(small_raw) == dataset_digest(reloaded)

    def test_shared_cache_recomputes_only_changed_stages(self, small_raw):
        cache = StageCache()
        PipelineRunner(small_raw, cache=cache).run()
        changed = PipelineRunner(
            small_raw,
            PAPER_CONFIG.derive({"temporal.coupling": 0.3}),
            cache=cache,
        )
        changed.run()
        assert set(changed.executions) == {"day", "hour"}


class TestParallelEquivalence:
    def test_parallel_slices_identical_to_serial(self, small_raw):
        serial = PipelineRunner(small_raw, jobs=1).run()
        threaded = PipelineRunner(small_raw, jobs=4).run()
        _same_result(serial, threaded)

    def test_facade_jobs_identical_to_serial(self, small_raw, small_result):
        parallel = NetworkExpansionOptimiser(small_raw, jobs=3).run()
        _same_result(small_result, parallel)


class TestFacadeEquivalence:
    def test_facade_equals_runner(self, small_raw, small_result):
        runner_result = PipelineRunner(small_raw).run()
        _same_result(small_result, runner_result)

    def test_facade_delegates_to_runner_cache(self, small_raw):
        optimiser = NetworkExpansionOptimiser(small_raw)
        optimiser.run()
        assert optimiser.runner.executions == {
            name: 1 for name in ALL_STAGES
        }


class TestSweep:
    def test_grid_cross_product(self):
        grid = config_grid(
            PAPER_CONFIG,
            {
                "temporal.coupling": [0.1, 0.2],
                "selection.secondary_distance_m": [200.0],
            },
        )
        assert len(grid) == 2
        overrides, config = grid[0]
        assert overrides["temporal.coupling"] == 0.1
        assert config.temporal.coupling == 0.1
        assert config.selection.secondary_distance_m == 200.0

    def test_sweep_shares_common_stages(self, small_raw, monkeypatch):
        calls = {"count": 0}
        original = runner_module.project_candidate_flow

        def counting(*args, **kwargs):
            calls["count"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(
            runner_module, "project_candidate_flow", counting
        )
        configs = [
            PAPER_CONFIG.derive({"temporal.coupling": value})
            for value in (0.05, 0.25)
        ]
        results = run_sweep(small_raw, configs)
        assert len(results) == 2
        assert calls["count"] == 1, "sweep recomputed a shared stage"
        assert (
            results[0].hour.station_partition
            != results[1].hour.station_partition
            or results[0].hour.modularity != results[1].hour.modularity
        )

    def test_sweep_parallel_matches_serial(self, small_raw):
        configs = [
            PAPER_CONFIG.derive({"temporal.coupling": value})
            for value in (0.05, 0.25)
        ]
        serial = run_sweep(small_raw, configs)
        threaded = run_sweep(small_raw, configs, jobs=2)
        for left, right in zip(serial, threaded):
            _same_result(left, right)

    def test_sweep_process_pool_matches_serial(self, small_raw):
        configs = [
            PAPER_CONFIG.derive({"temporal.coupling": value})
            for value in (0.05, 0.25)
        ]
        serial = run_sweep(small_raw, configs)
        forked = run_sweep(small_raw, configs, jobs=2, executor="process")
        for left, right in zip(serial, forked):
            _same_result(left, right)

    def test_facade_run_sweep_with_axes(self, small_raw):
        optimiser = NetworkExpansionOptimiser(small_raw)
        results = optimiser.run_sweep({"temporal.coupling": [0.05, 0.25]})
        assert len(results) == 2


class TestValidation:
    def test_bad_jobs_rejected(self, small_raw):
        with pytest.raises(PipelineError):
            PipelineRunner(small_raw, jobs=0)

    def test_bad_executor_rejected(self, small_raw):
        with pytest.raises(PipelineError):
            PipelineRunner(small_raw, executor="fibers")

    def test_unknown_stage_input_rejected(self, small_raw):
        from repro.pipeline import Stage

        with pytest.raises(PipelineError):
            PipelineRunner(
                small_raw,
                stages=(Stage("lonely", ("missing",), lambda runner: None),),
            )

    def test_bad_derive_path_rejected(self):
        with pytest.raises(ConfigError):
            PAPER_CONFIG.derive({"nonsense": 1})
        with pytest.raises(ConfigError):
            PAPER_CONFIG.derive({"temporal.warp_factor": 9})
