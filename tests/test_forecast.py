"""Tests for demand series and forecast baselines."""

from datetime import date, datetime

import pytest

from repro.data import RentalRecord
from repro.forecast import (
    CalendarProfileModel,
    DemandPoint,
    DemandSeries,
    GlobalMeanModel,
    SmoothedCalendarModel,
    evaluate,
)


def rental(rental_id: int, day: int, hour: int, origin: int = 1) -> RentalRecord:
    start = datetime(2020, 6, day, hour, 15)
    return RentalRecord(
        rental_id=rental_id,
        bike_id=1,
        started_at=start,
        ended_at=datetime(2020, 6, day, hour, 45),
        rental_location_id=origin,
        return_location_id=2,
    )


LOC_TO_STATION = {1: 10, 2: 20, 3: 10}


class TestDemandSeries:
    def test_daily_aggregation_dense(self):
        rentals = [rental(1, 1, 8), rental(2, 1, 9), rental(3, 3, 8)]
        series = DemandSeries.from_rentals(rentals, LOC_TO_STATION)
        # Days 1-3 inclusive, one station observed at origins.
        assert len(series) == 3
        counts = {(p.day, p.count) for p in series.points}
        assert (date(2020, 6, 1), 2) in counts
        assert (date(2020, 6, 2), 0) in counts
        assert (date(2020, 6, 3), 1) in counts

    def test_hourly_aggregation(self):
        rentals = [rental(1, 1, 8), rental(2, 1, 8)]
        series = DemandSeries.from_rentals(rentals, LOC_TO_STATION, hourly=True)
        assert len(series) == 24
        by_hour = {p.hour: p.count for p in series.points}
        assert by_hour[8] == 2
        assert by_hour[9] == 0

    def test_station_ids_parameter(self):
        rentals = [rental(1, 1, 8)]
        series = DemandSeries.from_rentals(
            rentals, LOC_TO_STATION, station_ids=[10, 20]
        )
        assert series.stations() == [10, 20]
        assert series.total_demand() == 1

    def test_empty(self):
        series = DemandSeries.from_rentals([], LOC_TO_STATION)
        assert len(series) == 0
        assert series.total_demand() == 0

    def test_split_by_date(self):
        rentals = [rental(i, day, 9) for i, day in enumerate([1, 2, 3, 4], 1)]
        series = DemandSeries.from_rentals(rentals, LOC_TO_STATION)
        train, test = series.split_by_date(date(2020, 6, 3))
        assert all(p.day < date(2020, 6, 3) for p in train.points)
        assert all(p.day >= date(2020, 6, 3) for p in test.points)
        assert len(train) + len(test) == len(series)

    def test_weekend_flag(self):
        point = DemandPoint(1, date(2020, 6, 6), None, 3)  # a Saturday
        assert point.is_weekend
        assert point.weekday == 5


class TestModels:
    def _series(self) -> DemandSeries:
        rentals = []
        rid = 1
        for day in range(1, 29):  # four weeks of June 2020
            weekday = date(2020, 6, day).weekday()
            n = 4 if weekday < 5 else 1
            for _ in range(n):
                rentals.append(rental(rid, day, 8))
                rid += 1
        return DemandSeries.from_rentals(rentals, LOC_TO_STATION)

    def test_global_mean(self):
        series = self._series()
        model = GlobalMeanModel().fit(series)
        point = series.points[0]
        expected = series.total_demand() / len(series)
        assert model.predict(point) == pytest.approx(expected)

    def test_global_mean_fallback_for_unknown_station(self):
        model = GlobalMeanModel().fit(self._series())
        ghost = DemandPoint(999, date(2020, 6, 1), None, 0)
        assert model.predict(ghost) > 0

    def test_calendar_model_learns_weekday_split(self):
        series = self._series()
        model = CalendarProfileModel().fit(series)
        weekday_point = DemandPoint(10, date(2020, 6, 29), None, 0)  # Monday
        weekend_point = DemandPoint(10, date(2020, 6, 27), None, 0)  # Saturday
        assert model.predict(weekday_point) == pytest.approx(4.0)
        assert model.predict(weekend_point) == pytest.approx(1.0)

    def test_smoothed_model_between_bucket_and_mean(self):
        series = self._series()
        smoothed = SmoothedCalendarModel(shrinkage=5.0).fit(series)
        calendar = CalendarProfileModel().fit(series)
        mean = GlobalMeanModel().fit(series)
        point = DemandPoint(10, date(2020, 6, 29), None, 0)
        lo, hi = sorted([calendar.predict(point), mean.predict(point)])
        assert lo <= smoothed.predict(point) <= hi

    def test_calendar_beats_global_mean_on_seasonal_data(self):
        series = self._series()
        train, test = series.split_by_date(date(2020, 6, 22))
        mean_score = evaluate(GlobalMeanModel(), "mean", train, test)
        calendar_score = evaluate(CalendarProfileModel(), "calendar", train, test)
        assert calendar_score.mae < mean_score.mae

    def test_evaluate_empty_test_rejected(self):
        series = self._series()
        with pytest.raises(ValueError):
            evaluate(GlobalMeanModel(), "mean", series, DemandSeries([], False))

    def test_scores_reported(self):
        series = self._series()
        train, test = series.split_by_date(date(2020, 6, 22))
        score = evaluate(SmoothedCalendarModel(), "smoothed", train, test)
        assert score.model == "smoothed"
        assert score.mae >= 0
        assert score.rmse >= score.mae
        assert score.n_points == len(test)

    def test_on_pipeline_output(self, small_result):
        series = DemandSeries.from_rentals(
            small_result.cleaned.rentals(),
            small_result.network.location_to_station,
        )
        assert series.total_demand() == small_result.cleaned.n_rentals
        train, test = series.split_by_date(date(2021, 6, 1))
        scores = [
            evaluate(GlobalMeanModel(), "mean", train, test),
            evaluate(CalendarProfileModel(), "calendar", train, test),
            evaluate(SmoothedCalendarModel(), "smoothed", train, test),
        ]
        assert all(score.mae > 0 for score in scores)
        by_name = {score.model: score.mae for score in scores}
        # Seasonal structure exists, so calendar-aware models win.
        assert by_name["smoothed"] <= by_name["mean"] + 1e-9
