"""Tests for the synthetic generator (spots, trips, noise, top level)."""

import pytest

# Synthetic generation is numpy-only by design (np.exp demand
# surfaces are not bit-reproducible in pure Python).
pytest.importorskip("numpy")

from repro.data import clean_dataset
from repro.geo import haversine_m, is_admissible
from repro.synth import (
    NoiseConfig,
    Rng,
    SyntheticMobyGenerator,
    apportion_days,
    all_days,
    build_dublin_zones,
    generate_adhoc_spots,
    generate_stations,
)
from tests.conftest import small_generator_config


class TestStations:
    def test_count_and_spacing(self):
        zones = build_dublin_zones()
        stations = generate_stations(zones, Rng(3), 40, min_spacing_m=220.0)
        assert len(stations) == 40
        for i, a in enumerate(stations):
            for b in stations[i + 1:]:
                assert haversine_m(a.point, b.point) >= 219.0

    def test_all_admissible(self):
        stations = generate_stations(build_dublin_zones(), Rng(3), 40)
        assert all(is_admissible(spot.point) for spot in stations)

    def test_ids_sequential(self):
        stations = generate_stations(build_dublin_zones(), Rng(3), 10)
        assert [s.spot_id for s in stations] == list(range(10))

    def test_popularity_has_peripheral_tail(self):
        stations = generate_stations(build_dublin_zones(), Rng(3), 60)
        popularities = sorted(s.popularity for s in stations)
        assert popularities[0] < 0.1
        assert popularities[-1] > 1.0


class TestAdhocSpots:
    def test_count_and_ids(self):
        zones = build_dublin_zones()
        stations = generate_stations(zones, Rng(3), 20)
        spots = generate_adhoc_spots(zones, Rng(4), 150, stations, first_id=20)
        assert len(spots) == 150
        assert min(s.spot_id for s in spots) == 20
        assert len({s.spot_id for s in spots}) == 150

    def test_zone_apportionment_tracks_weights(self):
        zones = build_dublin_zones()
        stations = generate_stations(zones, Rng(3), 20)
        spots = generate_adhoc_spots(zones, Rng(4), 200, stations, first_id=20)
        by_zone = {}
        for spot in spots:
            by_zone[spot.zone.name] = by_zone.get(spot.zone.name, 0) + 1
        heaviest = max(zones, key=lambda z: z.weight)
        assert by_zone[heaviest.name] == max(by_zone.values())

    def test_all_admissible(self):
        zones = build_dublin_zones()
        stations = generate_stations(zones, Rng(3), 20)
        spots = generate_adhoc_spots(zones, Rng(4), 100, stations)
        assert all(is_admissible(spot.point) for spot in spots)


class TestApportionment:
    def test_exact_total(self):
        days = all_days()
        counts = apportion_days(Rng(5), 10_000, days)
        assert sum(counts) == 10_000
        assert len(counts) == len(days)


class TestGeneratedDataset:
    def test_raw_counts_match_config(self, small_world):
        config = small_generator_config()
        raw = small_world.raw
        noise = config.noise
        assert raw.n_stations == config.n_stations + noise.n_dirty_stations
        expected_rentals = (
            config.n_clean_rentals
            + noise.n_rentals_missing_id
            + noise.n_rentals_dangling_id
            + noise.rentals_per_bad_station * 2  # outside + bay stations
            + noise.rentals_per_bad_location
            * (
                noise.n_locations_outside
                + noise.n_locations_in_bay
                + noise.n_locations_missing_coords
            )
        )
        assert raw.n_rentals == expected_rentals

    def test_cleaning_restores_clean_counts(self, small_world):
        config = small_generator_config()
        cleaned, _ = clean_dataset(small_world.raw)
        assert cleaned.n_stations == config.n_stations
        assert cleaned.n_rentals == config.n_clean_rentals
        assert cleaned.n_locations == pytest.approx(
            config.n_clean_locations, abs=30
        )

    def test_deterministic_given_seed(self):
        config = small_generator_config(seed=21)
        a = SyntheticMobyGenerator(seed=21, config=config).generate()
        b = SyntheticMobyGenerator(seed=21, config=config).generate()
        assert a.n_locations == b.n_locations
        assert [r.rental_id for r in a.rentals()][:50] == [
            r.rental_id for r in b.rentals()
        ][:50]
        first_a = next(a.rentals())
        first_b = next(b.rentals())
        assert first_a == first_b

    def test_seeds_differ(self):
        config_a = small_generator_config(seed=1)
        config_b = small_generator_config(seed=2)
        a = SyntheticMobyGenerator(seed=1, config=config_a).generate()
        b = SyntheticMobyGenerator(seed=2, config=config_b).generate()
        assert next(a.rentals()) != next(b.rentals())

    def test_trip_timestamps_in_window(self, small_raw):
        for rental in small_raw.rentals():
            assert rental.started_at <= rental.ended_at
            assert 2020 <= rental.started_at.year <= 2021

    def test_bike_ids_in_range(self, small_raw):
        config = small_generator_config()
        for rental in small_raw.rentals():
            assert 1 <= rental.bike_id <= config.n_bikes

    def test_station_locations_flagged(self, small_world):
        stations = [l for l in small_world.raw.locations() if l.is_station]
        clean_station_names = [s for s in stations if s.name.startswith("Station ")]
        assert len(clean_station_names) >= small_generator_config().n_stations

    def test_latent_world_exposed(self, small_world):
        assert len(small_world.stations) == small_generator_config().n_stations
        assert len(small_world.spots) == small_generator_config().n_adhoc_spots
        assert len(small_world.zones) > 0


class TestNoiseConfig:
    def test_dirty_counts(self):
        noise = NoiseConfig()
        assert noise.n_dirty_stations == 3
        assert noise.n_dirty_locations == 80
