"""Tests for the city model and temporal demand curves."""

import pytest

from repro.geo import is_admissible
from repro.synth import (
    ALL_REGIONS,
    DATA_END,
    DATA_START,
    PROFILE_EMPLOYMENT,
    PROFILE_LEISURE_PARK,
    PROFILE_MIXED,
    PROFILE_RESIDENTIAL,
    all_days,
    build_dublin_zones,
    check_zones,
    day_weight,
    destination_factor,
    hour_weights,
    is_weekend,
    origin_factor,
    region_weights,
)


class TestZones:
    def test_builtin_zones_valid(self):
        check_zones(build_dublin_zones())

    def test_zone_centres_admissible(self):
        for zone in build_dublin_zones():
            assert is_admissible(zone.center), zone.name

    def test_region_weights_shape(self):
        weights = region_weights(build_dublin_zones())
        assert set(weights) == set(ALL_REGIONS)
        # The paper: ~half the trips touch the central community.
        assert weights["central"] == max(weights.values())
        assert sum(weights.values()) == pytest.approx(1.0, abs=0.011)

    def test_check_rejects_bad_weights(self):
        zones = build_dublin_zones()[:3]
        with pytest.raises(ValueError):
            check_zones(zones)


class TestCalendar:
    def test_window_boundaries(self):
        days = all_days()
        assert days[0] == DATA_START
        assert days[-1] == DATA_END
        # Jan 2020 - Sep 2021: ~626 days.
        assert len(days) == 626

    def test_day_weight_positive(self):
        assert all(day_weight(day) > 0 for day in all_days())

    def test_summer_beats_lockdown(self):
        from datetime import date

        assert day_weight(date(2021, 7, 14)) > 2 * day_weight(date(2021, 1, 13))

    def test_weekday_beats_sunday(self):
        from datetime import date

        # Same week: Wednesday vs Sunday.
        assert day_weight(date(2020, 7, 8)) > day_weight(date(2020, 7, 12))


class TestHourCurves:
    def test_pmf_lengths(self):
        assert len(hour_weights(0)) == 24
        assert len(hour_weights(6)) == 24

    def test_weekday_bimodal(self):
        curve = hour_weights(1)
        assert curve[8] > curve[12] > curve[3]
        assert curve[17] > curve[12]

    def test_weekend_midday_peak(self):
        curve = hour_weights(6)
        assert max(curve) == max(curve[11:15])

    def test_is_weekend(self):
        assert not is_weekend(4)
        assert is_weekend(5)
        assert is_weekend(6)


class TestZoneFactors:
    def test_residential_morning_origin_peak(self):
        am = origin_factor(PROFILE_RESIDENTIAL, 1, 8)
        pm = origin_factor(PROFILE_RESIDENTIAL, 1, 17)
        assert am > 2 * pm

    def test_employment_mirrors_residential(self):
        assert destination_factor(PROFILE_EMPLOYMENT, 1, 8) > 2.0
        assert origin_factor(PROFILE_EMPLOYMENT, 1, 17) > 2.0

    def test_leisure_weekend_boost(self):
        weekday = origin_factor(PROFILE_LEISURE_PARK, 2, 13)
        weekend = origin_factor(PROFILE_LEISURE_PARK, 6, 13)
        assert weekend > 2 * weekday

    def test_mixed_flat(self):
        for weekday in (0, 6):
            for hour in (3, 8, 13, 18):
                assert origin_factor(PROFILE_MIXED, weekday, hour) == 1.0

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            origin_factor("nightlife", 0, 23)
        with pytest.raises(ValueError):
            destination_factor("nightlife", 0, 23)
