"""Restart durability: one ``--store-dir``, many service processes.

The acceptance path of the storage unification: a service stopped and
reconstructed over the same store directory must come back with its
jobs listed, results served byte-identically, datasets resolvable and
the stage cache warm — and jobs that were still pending (or
interrupted mid-run) at shutdown must be re-queued and complete.
"""

import json

import pytest

from repro.exceptions import ServiceError
from repro.pipeline.fingerprint import dataset_digest
from repro.serialize import canonical_json
from repro.service import (
    DatasetRef,
    ExpansionService,
    JobStore,
    ScenarioSpec,
)
from repro.service.jobs import jobs_namespace
from repro.store import Store


def make_service(store_dir, backend=None, **kwargs):
    kwargs.setdefault("max_workers", 2)
    return ExpansionService(
        store_dir=store_dir, store_backend=backend, **kwargs
    )


@pytest.mark.parametrize("backend", ["dir", "sharded"])
def test_everything_survives_a_restart(small_raw, tmp_path, backend):
    store_dir = tmp_path / "store"
    with make_service(store_dir, backend) as first:
        meta = first.register_dataset("small", small_raw)
        spec = ScenarioSpec(dataset=DatasetRef.named("small"))
        job = first.submit(spec)
        envelope = job.wait(timeout=300)
        fingerprint = job.fingerprint
        canonical = job.canonical
        executions = first.pipeline_executions
        assert executions == 1

    with make_service(store_dir, backend) as second:
        # Jobs: listed with their terminal status and original ids.
        restored = {j.job_id: j for j in second.jobs()}
        assert job.job_id in restored
        assert restored[job.job_id].status == "done"
        assert restored[job.job_id].fingerprint == fingerprint
        assert second.jobs_restored == 1 and second.jobs_requeued == 0
        # Results: the stored canonical bytes are served unchanged.
        assert second.results.raw(fingerprint) == canonical
        # Datasets: resolvable by name with the same content digest.
        assert second.datasets.digest("small") == meta["digest"]
        # Stage cache + results store: resubmitting is pure lookup.
        again = second.submit(spec).wait(timeout=300)
        assert second.pipeline_executions == 0
        assert canonical_json(again) == canonical
        # New work re-uses the warm stage prefix: only the community
        # cone recomputes, so clean/candidates/network never re-run.
        warm = second.submit(
            ScenarioSpec(
                dataset=DatasetRef.named("small"),
                overrides={"community.seed": 99},
            )
        ).wait(timeout=300)
        assert warm["outputs"]["run"]["headline"] != {}
        assert second.pipeline_executions == 1
        stats = second.stats()
        assert stats["store"]["backend"] == backend
        assert stats["store"]["stage"]["entries"] > 0
        assert stats["store"]["results"]["entries"] >= 2
        assert stats["store"]["jobs"]["entries"] >= 1
        assert stats["store"]["datasets"]["entries"] == 1


def test_queued_and_running_jobs_are_requeued(small_raw, tmp_path):
    """Jobs a killed process left pending/running run on the next start.

    A hard kill is simulated by journalling the documents directly —
    exactly the bytes a service that died mid-flight leaves behind.
    """
    store_dir = tmp_path / "store"
    with make_service(store_dir) as first:
        first.register_dataset("small", small_raw)
        done = first.submit(ScenarioSpec(dataset=DatasetRef.named("small")))
        done.wait(timeout=300)

    # Forge the interrupted backlog: one queued, one mid-run.
    jobstore = JobStore(jobs_namespace(Store(store_dir).backend("jobs")))
    queued_spec = ScenarioSpec(
        dataset=DatasetRef.named("small"), overrides={"community.seed": 41}
    )
    running_spec = ScenarioSpec(
        dataset=DatasetRef.named("small"), overrides={"community.seed": 42}
    )
    for job_id, status, spec in (
        ("job-000002", "pending", queued_spec),
        ("job-000003", "running", running_spec),
    ):
        jobstore.namespace.put(
            job_id,
            canonical_json(
                {
                    "type": "Job",
                    "job_id": job_id,
                    "fingerprint": "ab" * 32,  # stale; recomputed on requeue
                    "status": status,
                    "spec": spec.to_dict(),
                    "subscribers": 1,
                    "created_at": 1.0,
                    "started_at": 2.0 if status == "running" else None,
                    "finished_at": None,
                    "cancel_requested": False,
                }
            ).encode(),
        )

    with make_service(store_dir) as second:
        assert second.jobs_requeued == 2
        for job_id in ("job-000002", "job-000003"):
            job = second.job(job_id)
            assert job is not None
            job._event.wait(300)
            assert job.status == "done", job.error
            assert second.results.raw(job.fingerprint) is not None
        # The id counter moved past the journalled ids: no collisions.
        fresh = second.submit(
            ScenarioSpec(dataset=DatasetRef.named("small"))
        )
        assert int(fresh.job_id.split("-")[1]) > 3


def test_one_shot_embedders_do_not_hijack_the_backlog(small_raw, tmp_path):
    store_dir = tmp_path / "store"
    with make_service(store_dir) as first:
        first.register_dataset("small", small_raw)
    jobstore = JobStore(jobs_namespace(Store(store_dir).backend("jobs")))
    jobstore.namespace.put(
        "job-000001",
        canonical_json(
            {
                "type": "Job",
                "job_id": "job-000001",
                "fingerprint": "ab" * 32,
                "status": "pending",
                "spec": ScenarioSpec(
                    dataset=DatasetRef.named("small")
                ).to_dict(),
                "subscribers": 1,
                "created_at": 1.0,
                "started_at": None,
                "finished_at": None,
            }
        ).encode(),
    )
    with make_service(store_dir, resume_jobs=False) as one_shot:
        assert one_shot.jobs_requeued == 0
        assert one_shot.job("job-000001").status == "pending"
    # Still pending in the journal for the next resuming service.
    doc = json.loads(jobstore.namespace.get("job-000001").decode())
    assert doc["status"] == "pending"


def test_requeued_job_with_vanished_dataset_fails_cleanly(tmp_path):
    store_dir = tmp_path / "store"
    make_service(store_dir).close()  # lay the store tree down
    jobstore = JobStore(jobs_namespace(Store(store_dir).backend("jobs")))
    jobstore.namespace.put(
        "job-000001",
        canonical_json(
            {
                "type": "Job",
                "job_id": "job-000001",
                "fingerprint": "ab" * 32,
                "status": "pending",
                "spec": ScenarioSpec(
                    dataset=DatasetRef.named("gone")
                ).to_dict(),
                "subscribers": 1,
                "created_at": 1.0,
                "started_at": None,
                "finished_at": None,
            }
        ).encode(),
    )
    with make_service(store_dir) as service:
        job = service.job("job-000001")
        job._event.wait(60)
        assert job.status == "failed"
        assert "gone" in job.error
    # The failure is journalled, so the next restart does not retry.
    with make_service(store_dir) as after:
        assert after.jobs_requeued == 0
        assert after.job("job-000001").status == "failed"


def test_garbled_journal_documents_are_skipped(small_raw, tmp_path):
    store_dir = tmp_path / "store"
    with make_service(store_dir) as first:
        first.register_dataset("small", small_raw)
        first.submit(
            ScenarioSpec(dataset=DatasetRef.named("small"))
        ).wait(timeout=300)
    (store_dir / "jobs" / "job-000999.json").write_text("{torn")
    with make_service(store_dir) as second:
        assert {j.job_id for j in second.jobs()} == {"job-000001"}


def test_datasets_keep_working_across_restarts(small_raw, tmp_path):
    store_dir = tmp_path / "store"
    with make_service(store_dir) as first:
        first.register_dataset("small", small_raw)
    with make_service(store_dir) as second:
        listed = second.datasets.list()
        assert [meta["name"] for meta in listed] == ["small"]
        resolved, digest = second.datasets.get_with_digest("small")
        assert dataset_digest(resolved) == digest
        assert second.delete_dataset("small") is True
        with pytest.raises(ServiceError):
            second.submit(ScenarioSpec(dataset=DatasetRef.named("small")))
    with make_service(store_dir) as third:
        assert len(third.datasets) == 0


def test_cancel_of_queued_job_survives_restart(small_raw, tmp_path):
    """A cancelled-while-queued job must not be resurrected and run."""
    store_dir = tmp_path / "store"
    with make_service(store_dir) as first:
        first.register_dataset("small", small_raw)
    # A queued job whose cancel was requested just before the kill.
    jobstore = JobStore(jobs_namespace(Store(store_dir).backend("jobs")))
    jobstore.namespace.put(
        "job-000001",
        canonical_json(
            {
                "type": "Job",
                "job_id": "job-000001",
                "fingerprint": "ab" * 32,
                "status": "pending",
                "spec": ScenarioSpec(
                    dataset=DatasetRef.named("small")
                ).to_dict(),
                "subscribers": 1,
                "created_at": 1.0,
                "started_at": None,
                "finished_at": None,
                "cancel_requested": True,
            }
        ).encode(),
    )
    with make_service(store_dir) as second:
        job = second.job("job-000001")
        job._event.wait(60)
        assert job.status == "cancelled"
        assert second.pipeline_executions == 0
    # The terminal state was journalled: no further restarts requeue it.
    with make_service(store_dir) as third:
        assert third.jobs_requeued == 0
        assert third.job("job-000001").status == "cancelled"


def test_cancel_request_is_journalled(small_raw, tmp_path):
    store_dir = tmp_path / "store"
    with make_service(store_dir, max_workers=1) as service:
        service.register_dataset("small", small_raw)
        # Fill the single worker lane, then queue a second job.
        service.submit(
            ScenarioSpec(
                dataset=DatasetRef.named("small"),
                overrides={"community.seed": 71},
            )
        )
        queued = service.submit(
            ScenarioSpec(
                dataset=DatasetRef.named("small"),
                overrides={"community.seed": 72},
            )
        )
        service.cancel(queued.job_id)
        doc = json.loads(
            (store_dir / "jobs" / f"{queued.job_id}.json").read_text()
        )
        assert doc["cancel_requested"] is True or doc["status"] == "cancelled"
