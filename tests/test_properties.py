"""Property-based tests (hypothesis) on the core substrates."""

import math

import pytest

np = pytest.importorskip("numpy")
from hypothesis import given, settings, strategies as st

from repro.cluster import cluster_at_threshold, pairwise_haversine_matrix
from repro.community import Partition, louvain, modularity
from repro.config import CommunityConfig
from repro.geo import (
    BoundingBox,
    GeoPoint,
    GridIndex,
    destination_point,
    equirectangular_m,
    haversine_m,
)
from repro.graphdb import WeightedGraph
from repro.metrics import gini

# Dublin-ish coordinate strategies keep distances city-scale.
lat_st = st.floats(min_value=53.20, max_value=53.45, allow_nan=False)
lon_st = st.floats(min_value=-6.45, max_value=-6.05, allow_nan=False)
point_st = st.builds(GeoPoint, lat_st, lon_st)


class TestHaversineProperties:
    @given(point_st, point_st)
    def test_symmetry(self, a, b):
        assert haversine_m(a, b) == haversine_m(b, a)

    @given(point_st, point_st)
    def test_non_negative_and_identity(self, a, b):
        distance = haversine_m(a, b)
        assert distance >= 0.0
        if a == b:
            assert distance == 0.0

    @given(point_st, point_st, point_st)
    def test_triangle_inequality(self, a, b, c):
        assert haversine_m(a, c) <= (
            haversine_m(a, b) + haversine_m(b, c) + 1e-6
        )

    @given(point_st, point_st)
    def test_equirectangular_close_at_city_scale(self, a, b):
        exact = haversine_m(a, b)
        approx = equirectangular_m(a, b)
        assert abs(exact - approx) <= max(1.0, exact * 0.002)

    @given(
        point_st,
        st.floats(min_value=0.0, max_value=359.99),
        st.floats(min_value=0.0, max_value=5_000.0),
    )
    def test_destination_point_distance(self, origin, bearing, distance):
        target = destination_point(origin, bearing, distance)
        assert abs(haversine_m(origin, target) - distance) <= 0.5


class TestBoundingBoxProperties:
    @given(st.lists(point_st, min_size=1, max_size=20))
    def test_box_contains_all_inputs(self, points):
        box = BoundingBox.around(points)
        assert all(box.contains(point) for point in points)


class TestGridIndexProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(point_st, min_size=1, max_size=40, unique=True),
        point_st,
        st.floats(min_value=10.0, max_value=3_000.0),
    )
    def test_within_matches_brute_force(self, points, query, radius):
        index: GridIndex[int] = GridIndex(cell_m=150.0)
        index.extend(enumerate(points))
        hits = {key for key, _ in index.within(query, radius)}
        brute = {
            i for i, point in enumerate(points)
            if haversine_m(query, point) <= radius
        }
        assert hits == brute

    @settings(max_examples=30, deadline=None)
    @given(st.lists(point_st, min_size=1, max_size=40, unique=True), point_st)
    def test_nearest_matches_brute_force(self, points, query):
        index: GridIndex[int] = GridIndex(cell_m=150.0)
        index.extend(enumerate(points))
        key, distance = index.nearest(query)
        best = min(haversine_m(query, point) for point in points)
        assert distance == best


class TestLinkageProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(point_st, min_size=2, max_size=25, unique=True),
        st.floats(min_value=20.0, max_value=2_000.0),
    )
    def test_cut_is_partition_and_respects_diameter(self, points, threshold):
        matrix = pairwise_haversine_matrix(points)
        clusters = cluster_at_threshold(matrix, threshold, "complete")
        flat = sorted(i for cluster in clusters for i in cluster)
        assert flat == list(range(len(points)))
        for cluster in clusters:
            for i in cluster:
                for j in cluster:
                    assert matrix[i, j] <= threshold + 1e-6

    @settings(max_examples=20, deadline=None)
    @given(st.lists(point_st, min_size=2, max_size=20, unique=True))
    def test_monotone_cluster_count(self, points):
        matrix = pairwise_haversine_matrix(points)
        low = len(cluster_at_threshold(matrix, 50.0, "complete"))
        high = len(cluster_at_threshold(matrix, 500.0, "complete"))
        assert high <= low


def graph_strategy() -> st.SearchStrategy[WeightedGraph]:
    edge = st.tuples(
        st.integers(0, 12), st.integers(0, 12),
        st.floats(min_value=0.1, max_value=10.0),
    )

    def build(edges) -> WeightedGraph:
        graph = WeightedGraph()
        for u, v, w in edges:
            graph.add_edge(u, v, w)
        return graph

    return st.lists(edge, min_size=1, max_size=40).map(build)


class TestCommunityProperties:
    @settings(max_examples=25, deadline=None)
    @given(graph_strategy())
    def test_louvain_outputs_valid_partition(self, graph):
        result = louvain(graph, CommunityConfig(seed=1))
        assert set(result.partition.assignment) == set(graph.nodes())
        assert -1.0 <= result.modularity <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(graph_strategy())
    def test_louvain_no_worse_than_singletons(self, graph):
        result = louvain(graph, CommunityConfig(seed=1))
        singletons = Partition.from_assignment(
            {node: index for index, node in enumerate(graph.nodes())}
        )
        assert result.modularity >= modularity(graph, singletons) - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(graph_strategy(), st.integers(min_value=1, max_value=4))
    def test_modularity_bounded(self, graph, k):
        partition = Partition.from_assignment(
            {node: hash(node) % k for node in graph.nodes()}
        )
        score = modularity(graph, partition)
        assert -1.0 <= score <= 1.0


class TestGiniProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
    def test_bounded(self, values):
        score = gini(values)
        assert -1e-9 <= score <= 1.0

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1e5), min_size=1, max_size=40),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_scale_invariance(self, values, factor):
        assert abs(gini(values) - gini([v * factor for v in values])) < 1e-7

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=40))
    def test_adding_equal_share_reduces_inequality(self, values):
        if sum(values) == 0:
            return
        boosted = [v + 50.0 for v in values]
        assert gini(boosted) <= gini(values) + 1e-9


class TestPartitionProperties:
    @given(st.dictionaries(st.integers(0, 30), st.integers(0, 5), min_size=1))
    def test_normalisation_preserves_grouping(self, assignment):
        partition = Partition.from_assignment(assignment)
        for a in assignment:
            for b in assignment:
                same_before = assignment[a] == assignment[b]
                same_after = partition[a] == partition[b]
                assert same_before == same_after

    @given(st.dictionaries(st.integers(0, 30), st.integers(0, 5), min_size=1))
    def test_labels_contiguous_from_one(self, assignment):
        partition = Partition.from_assignment(assignment)
        labels = partition.labels()
        assert labels == list(range(1, len(labels) + 1))

    @given(st.dictionaries(st.integers(0, 30), st.integers(0, 5), min_size=1))
    def test_sizes_sorted_descending(self, assignment):
        partition = Partition.from_assignment(assignment)
        sizes = [partition.sizes()[label] for label in partition.labels()]
        assert sizes == sorted(sizes, reverse=True)
