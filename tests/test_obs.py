"""Unit tests for :mod:`repro.obs` — registry, trace ids, event log.

The HTTP-level exposition and propagation tests live in
``test_obs_http.py``; this module pins the building blocks: instrument
semantics, Prometheus text rendering (escaping, histogram layout),
the structured log's line discipline, and the timer-snapshot isolation
the observability bridge relies on.
"""

import io
import json
import math

import pytest

from repro.obs import (
    NULL_REGISTRY,
    REQUIRED_KEYS,
    Histogram,
    JsonEventLog,
    MetricsRegistry,
    Sample,
    ServiceMetrics,
    is_trace_id,
    namespace_samples,
    new_trace_id,
    observe_stage_report,
)
from repro.obs.metrics import escape_label_value, format_value
from repro.perf import StageTimer
from repro.store import MemoryBackend, Namespace


class TestInstruments:
    def test_counter_increments_and_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_histogram_buckets_values_and_snapshots_cumulatively(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        cumulative, total, count = histogram.snapshot()
        # per-bucket (1, 2, 1, 1) -> cumulative (1, 3, 4, 5 incl +Inf)
        assert cumulative == [1, 3, 4, 5]
        assert cumulative == sorted(cumulative)  # monotone by construction
        assert count == 5
        assert total == pytest.approx(56.05)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 0.1))

    def test_labelled_children_are_independent(self):
        counter = MetricsRegistry().counter("c", "help", labels=("route",))
        counter.labels("/a").inc()
        counter.labels("/a").inc()
        counter.labels("/b").inc()
        assert counter.labels("/a").value == 2
        assert counter.labels("/b").value == 1
        with pytest.raises(ValueError):
            counter.labels("/a", "extra")


class TestRegistry:
    def test_reregistering_identical_metric_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "help", labels=("x",))
        assert registry.counter("c", "help", labels=("x",)) is first

    def test_conflicting_kind_or_labels_raise(self):
        registry = MetricsRegistry()
        registry.counter("c", "help")
        with pytest.raises(ValueError):
            registry.gauge("c", "help")
        with pytest.raises(ValueError):
            registry.counter("c", "help", labels=("x",))

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("0bad", "help")
        with pytest.raises(ValueError):
            registry.counter("ok", "help", labels=("bad-label",))
        with pytest.raises(ValueError):
            registry.counter("ok", "help", labels=("__reserved",))

    def test_render_emits_help_type_once_per_metric(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "Things counted.", labels=("k",))
        counter.labels("a").inc()
        counter.labels("b").inc(2)
        text = registry.render()
        assert text.count("# HELP c_total Things counted.") == 1
        assert text.count("# TYPE c_total counter") == 1
        assert 'c_total{k="a"} 1' in text
        assert 'c_total{k="b"} 2' in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        registry = MetricsRegistry()
        registry.counter("c", "help", labels=("k",)).labels('x"y\nz').inc()
        line = [l for l in registry.render().splitlines() if l.startswith("c{")]
        assert line == ['c{k="x\\"y\\nz"} 1']

    def test_format_value_integers_and_infinities(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(float("nan")) == "NaN"

    def test_histogram_rendered_as_cumulative_le_series(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "help", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        lines = registry.render().splitlines()
        assert 'h_bucket{le="0.1"} 1' in lines
        assert 'h_bucket{le="1"} 2' in lines
        assert 'h_bucket{le="+Inf"} 3' in lines
        assert "h_count 3" in lines
        assert any(line.startswith("h_sum ") for line in lines)

    def test_callback_samples_grouped_under_one_header(self):
        registry = MetricsRegistry()
        registry.register_callback(
            lambda: [Sample("cb", "gauge", "Cb.", (("k", "a"),), 1)]
        )
        registry.register_callback(
            lambda: [Sample("cb", "gauge", "Cb.", (("k", "b"),), 2)]
        )
        text = registry.render()
        assert text.count("# TYPE cb gauge") == 1
        assert 'cb{k="a"} 1' in text
        assert 'cb{k="b"} 2' in text

    def test_null_registry_instruments_record_nothing(self):
        counter = NULL_REGISTRY.counter("null_c", "help")
        counter.inc()
        assert counter.value == 0
        assert NULL_REGISTRY.enabled is False


class TestTraceIds:
    def test_new_ids_are_32_hex_and_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 32
            assert is_trace_id(trace_id)

    @pytest.mark.parametrize(
        "candidate, valid",
        [
            ("deadbeef", True),  # 8 hex: shortest accepted
            ("a" * 64, True),
            ("", False),
            ("a" * 7, False),  # too short
            ("a" * 65, False),  # too long
            ("DEADBEEFDEADBEEF", False),  # uppercase is not canonical
            ("not-hex-at-all!", False),
        ],
    )
    def test_validation(self, candidate, valid):
        assert is_trace_id(candidate) is valid


class TestJsonEventLog:
    def test_lines_are_single_line_json_with_required_keys(self):
        buffer = io.StringIO()
        log = JsonEventLog(buffer)
        log.emit("http", trace_id="abcd1234", status=200, note="multi\nline")
        log.emit("job", trace_id="abcd1234", status="done")
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert "\n" not in line
            record = json.loads(line)
            for key in REQUIRED_KEYS:
                assert key in record
        assert json.loads(lines[0])["note"] == "multi\nline"
        assert log.lines_written == 2

    def test_path_target_appends(self, tmp_path):
        target = tmp_path / "logs" / "access.jsonl"
        log = JsonEventLog(target)
        log.emit("http", trace_id="abcd1234")
        log.close()
        log = JsonEventLog(target)
        log.emit("http", trace_id="abcd1234")
        log.close()
        assert len(target.read_text().splitlines()) == 2

    def test_broken_sink_never_raises(self):
        class Broken:
            def write(self, text):
                raise OSError("disk full")

            def flush(self):
                raise OSError("disk full")

        log = JsonEventLog(Broken())
        log.emit("http", trace_id="abcd1234")  # must not raise
        assert log.lines_written == 0
        assert log.lines_dropped == 1

    def test_trips_after_consecutive_failures(self):
        writes = []

        class Broken:
            def write(self, text):
                writes.append(text)
                raise OSError("disk full")

            def flush(self):  # pragma: no cover - write raises first
                pass

        log = JsonEventLog(Broken())
        for _ in range(JsonEventLog.TRIP_AFTER + 5):
            log.emit("http", trace_id="abcd1234")
        assert log.tripped is True
        # Past the trip, emits return before touching the stream.
        assert len(writes) == JsonEventLog.TRIP_AFTER
        assert log.lines_dropped == JsonEventLog.TRIP_AFTER + 5
        assert log.lines_written == 0

    def test_success_resets_failure_streak(self):
        class Flaky:
            def __init__(self):
                self.fail = True
                self.lines = []

            def write(self, text):
                if self.fail:
                    raise OSError("disk full")
                self.lines.append(text)

            def flush(self):
                pass

        sink = Flaky()
        log = JsonEventLog(sink)
        for _ in range(JsonEventLog.TRIP_AFTER - 1):
            log.emit("http", trace_id="abcd1234")
        sink.fail = False  # the disk comes back one write before the trip
        log.emit("http", trace_id="abcd1234")
        sink.fail = True
        log.emit("http", trace_id="abcd1234")
        assert log.tripped is False  # streak restarted after the success
        assert log.lines_written == 1
        assert log.lines_dropped == JsonEventLog.TRIP_AFTER


class TestServiceMetricsBridge:
    def test_http_and_transition_observations_render(self):
        metrics = ServiceMetrics(MetricsRegistry())
        metrics.observe_http("GET", "/v1/healthz", 200, 0.002)
        metrics.observe_transition("pending")
        text = metrics.registry.render()
        assert (
            'repro_http_requests_total{method="GET",route="/v1/healthz",'
            'status="200"} 1' in text
        )
        assert 'repro_job_transitions_total{state="pending"} 1' in text
        assert 'repro_http_request_seconds_count{route="/v1/healthz"} 1' in text

    def test_namespace_samples_mirror_stats(self):
        namespace = Namespace(MemoryBackend(), occupancy_ttl_s=0)
        namespace.put("ab12", b"value")
        namespace.get("ab12")
        namespace.get("beef")
        rows = {
            (sample.name, sample.labels): sample.value
            for sample in namespace_samples("results", namespace)
        }
        stats = namespace.stats()
        label = (("namespace", "results"),)
        assert rows[("repro_store_hits_total", label)] == stats["hits"]
        assert rows[("repro_store_misses_total", label)] == stats["misses"]
        assert rows[("repro_store_entries", label)] == stats["entries"] == 1

    def test_stage_report_bridges_into_histogram(self):
        timer = StageTimer()
        timer.add("stage:clean", 0.2, cached=False)
        timer.add("stage:network", 0.05, cached=True)
        timer.add("not-a-stage", 1.0)
        metrics = ServiceMetrics(MetricsRegistry())
        observe_stage_report(metrics, timer.report())
        text = metrics.registry.render()
        assert (
            'repro_stage_seconds_count{stage="clean",cached="false"} 1'
            in text
        )
        assert (
            'repro_stage_seconds_count{stage="network",cached="true"} 1'
            in text
        )
        assert "not-a-stage" not in text


class TestNamespaceOccupancyTtl:
    def test_per_instance_ttl_overrides_class_default(self):
        namespace = Namespace(MemoryBackend())
        assert namespace.occupancy_ttl_s == Namespace.OCCUPANCY_TTL_S
        tuned = Namespace(MemoryBackend(), occupancy_ttl_s=0.25)
        assert tuned.occupancy_ttl_s == 0.25
        with pytest.raises(ValueError):
            Namespace(MemoryBackend(), occupancy_ttl_s=-1)

    def test_zero_ttl_disables_the_occupancy_cache(self):
        namespace = Namespace(MemoryBackend(), occupancy_ttl_s=0)
        assert namespace.stats()["entries"] == 0
        namespace.put("ab12", b"v")
        assert namespace.stats()["entries"] == 1  # no stale cached scan


class TestPerfReportSnapshotIsolation:
    def test_meta_containers_are_frozen_at_snapshot_time(self):
        """A report must not change when the timer keeps aggregating.

        Meta values can be containers the recording site keeps
        mutating; ``to_dict`` deep-copies them so an already-served
        ``timings`` block (or a journalled job document) is a frozen
        record, not a live view.
        """
        timer = StageTimer()
        detail = {"rows": [1, 2]}
        timer.add("stage:clean", 0.5, detail=detail)
        report = timer.report()
        detail["rows"].append(3)
        timer.add("stage:clean", 0.1, detail=detail)
        section = report.section("stage:clean")
        assert section["meta"]["detail"] == {"rows": [1, 2]}
        assert section["calls"] == 1

    def test_nested_section_meta_is_isolated_too(self):
        timer = StageTimer()
        tags = ["a"]
        with timer.section("outer"):
            with timer.section("inner", tags=tags):
                pass
        report = timer.report()
        tags.append("b")
        inner = report.section("outer")["children"][0]
        assert inner["meta"]["tags"] == ["a"]
