"""Pre-fork serving tests: ``repro serve --workers N`` as subprocesses.

A real fleet — forked processes sharing one port and one
``--store-dir`` — exercised over the wire: every worker serves the
same warm bytes, a job executed by one worker is visible from its
siblings through the shared journal, ``SIGTERM`` to the parent reaps
the whole fleet, and the default (``--workers 1``) stays the plain
single-process server.
"""

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="pre-fork serving needs os.fork"
)

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: New-connection budget for observing every worker at least once
#: (SO_REUSEPORT balances by connection hash; two workers are seen
#: within a handful of connections in practice).
MAX_PROBES = 300


def boot_serve(store_dir, *extra_args):
    """Start a ``repro serve`` subprocess; returns (proc, base_url)."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--store-dir", str(store_dir),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": SRC},
    )
    banner = proc.stdout.readline()
    base = banner.strip().rsplit(" ", 1)[-1]
    if not base.startswith("http://"):
        proc.kill()
        proc.wait(timeout=30)
        raise AssertionError(f"unexpected serve banner: {banner!r}")
    return proc, base


def split_url(base):
    host, _, port = base.removeprefix("http://").partition(":")
    return host, int(port)


def connect(base, deadline=60.0):
    """An open keep-alive connection to the fleet (retrying startup)."""
    host, port = split_url(base)
    end = time.monotonic() + deadline
    while True:
        try:
            conn = http.client.HTTPConnection(host, port, timeout=60)
            conn.connect()
            return conn
        except OSError:
            if time.monotonic() > end:
                raise
            time.sleep(0.05)


def on_conn(conn, method, path, body=None):
    """(status, headers, bytes) over an existing connection."""
    data = json.dumps(body).encode() if body is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    conn.request(method, path, body=data, headers=headers)
    response = conn.getresponse()
    return response.status, dict(response.getheaders()), response.read()


def per_worker_exchange(base, method, path, *, want_workers, body=None):
    """Run one exchange against each distinct worker.

    Every probe opens a fresh connection, reads ``/v1/healthz`` to
    learn which worker the kernel picked, then — **on that same
    keep-alive connection**, so the same worker answers — performs the
    requested exchange.  Returns ``{worker: (status, headers, body)}``
    once ``want_workers`` distinct workers have been exercised.
    """
    seen = {}
    for _ in range(MAX_PROBES):
        conn = connect(base)
        try:
            status, _, health = on_conn(conn, "GET", "/v1/healthz")
            if status != 200:
                continue
            worker = json.loads(health)["worker"]
            if worker in seen:
                continue
            seen[worker] = on_conn(conn, method, path, body=body)
            if len(seen) >= want_workers:
                return seen
        finally:
            conn.close()
    raise AssertionError(
        f"saw only workers {sorted(seen)} in {MAX_PROBES} probes"
    )


@pytest.fixture(scope="module")
def fleet(small_raw, tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("workers-store")
    proc, base = boot_serve(store_dir, "--workers", "2")
    try:
        conn = connect(base)
        try:
            status, _, _ = on_conn(
                conn, "PUT", "/v1/datasets/small", body=small_raw.to_dict()
            )
            assert status == 201
            status, _, body = on_conn(
                conn, "POST", "/v1/runs",
                body={"dataset": {"kind": "named", "name": "small"}},
            )
            assert status == 200
            envelope = json.loads(body)
        finally:
            conn.close()
        yield proc, base, envelope, body
    finally:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=60)


class TestFleetServing:
    def test_both_workers_answer_healthz(self, fleet):
        _, base, _, _ = fleet
        seen = per_worker_exchange(
            base, "GET", "/v1/healthz", want_workers=2
        )
        assert sorted(seen) == [0, 1]

    def test_warm_bytes_identical_across_workers(self, fleet):
        _, base, envelope, posted = fleet
        path = f"/v1/results/{envelope['fingerprint']}"
        seen = per_worker_exchange(base, "GET", path, want_workers=2)
        bodies = set()
        for worker, (status, headers, body) in seen.items():
            assert status == 200, worker
            assert int(headers.get("Content-Length")) == len(body)
            bodies.add(body)
        # One scenario, one byte sequence — no matter which process's
        # byte cache rendered it (both read the same stored envelope).
        assert bodies == {posted}

    def test_job_visible_from_every_worker_via_journal(self, fleet):
        _, base, envelope, _ = fleet
        # Learn the job id from whichever worker executed it.
        job_id = None
        for _ in range(MAX_PROBES):
            conn = connect(base)
            try:
                _, _, body = on_conn(conn, "GET", "/v1/jobs")
                jobs = json.loads(body)["jobs"]
                done = [job for job in jobs if job["status"] == "done"]
                if done:
                    job_id = done[0]["job_id"]
                    break
            finally:
                conn.close()
        assert job_id is not None
        seen = per_worker_exchange(
            base, "GET", f"/v1/jobs/{job_id}", want_workers=2
        )
        for worker, (status, _, body) in seen.items():
            assert status == 200, f"worker {worker} cannot see {job_id}"
            document = json.loads(body)
            assert document["job_id"] == job_id
            assert document["status"] == "done"
            assert document["fingerprint"] == envelope["fingerprint"]

    def test_sigterm_reaps_the_fleet(self, small_raw, tmp_path_factory):
        store_dir = tmp_path_factory.mktemp("workers-term")
        proc, base = boot_serve(store_dir, "--workers", "2")
        try:
            conn = connect(base)
            conn.close()
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
            # The whole fleet is gone: nothing accepts on the port.
            host, port = split_url(base)
            with pytest.raises(OSError):
                probe = socket.create_connection((host, port), timeout=2)
                # A lingering listener would accept; prove it did not by
                # requiring the connect itself to fail.
                probe.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)


class TestSingleWorkerDefault:
    def test_default_is_one_plain_process(self, small_raw, tmp_path_factory):
        store_dir = tmp_path_factory.mktemp("workers-single")
        proc, base = boot_serve(store_dir)  # no --workers flag
        try:
            for _ in range(10):
                conn = connect(base)
                try:
                    status, _, body = on_conn(conn, "GET", "/v1/healthz")
                finally:
                    conn.close()
                assert status == 200
                assert json.loads(body)["worker"] == 0
        finally:
            proc.terminate()
            # The plain single-process server exits on the default
            # SIGTERM disposition — no pre-fork supervisor in the way.
            assert proc.wait(timeout=60) in (0, -signal.SIGTERM)

    def test_multi_worker_without_store_dir_is_refused(self, tmp_path):
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", "2",
            ],
            capture_output=True,
            text=True,
            timeout=60,
            env={**os.environ, "PYTHONPATH": SRC},
        )
        assert proc.returncode == 2
        assert "--store-dir" in proc.stderr
