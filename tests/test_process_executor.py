"""Process-executor stage fan-out + the new service surface features.

The process path's contract: ``jobs > 1, executor="process"`` computes
the same results as the serial path, with the on-disk stage cache as
the cross-process rendezvous — a second run over the same cache
recomputes nothing, in any process.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.perf import PerfReport
from repro.pipeline import PipelineRunner
from repro.pipeline.cache import StageCache
from repro.service import (
    DatasetRef,
    ExpansionService,
    ScenarioSpec,
    make_server,
)


class TestProcessExecutor:
    def test_matches_serial_and_hits_shared_disk_cache(self, small_raw, tmp_path):
        serial = PipelineRunner(small_raw).run()
        cache_dir = tmp_path / "stage-cache"
        cold = PipelineRunner(
            small_raw, cache=StageCache(cache_dir), jobs=4, executor="process"
        )
        cold_result = cold.run()
        assert cold_result.headline() == serial.headline()
        assert cold_result.basic.partition == serial.basic.partition
        assert cold_result.day.station_partition == serial.day.station_partition
        assert cold_result.hour.station_partition == serial.hour.station_partition
        assert sum(cold.executions.values()) == len(cold.stages)
        # Every stage value is on disk (plus the value-addressed
        # sub-entries — HAC, assignment, per-slice aggregates).
        on_disk = {path.stem for path in cache_dir.glob("*.pkl")}
        assert {cold.key(name) for name in cold.stages} <= on_disk

        # A fresh runner (fresh memory tier, as a new process would
        # have) must serve every stage from the shared disk cache.
        warm = PipelineRunner(
            small_raw, cache=StageCache(cache_dir), jobs=4, executor="process"
        )
        warm_result = warm.run()
        assert warm.executions == {}
        assert warm_result.headline() == serial.headline()

    def test_without_disk_cache_uses_temp_rendezvous(self, small_raw):
        runner = PipelineRunner(small_raw, jobs=4, executor="process")
        result = runner.run()
        assert result.headline() == PipelineRunner(small_raw).run().headline()

    def test_bounded_cache_never_doubles_as_rendezvous(self, small_raw, tmp_path):
        """An LRU-bounded disk cache can evict a stage pickle between a
        worker's write and the parent's read — the rendezvous must be a
        separate eviction-exempt directory."""
        cache = StageCache(
            tmp_path / "tiny-cache", memory_slots=0, max_entries=1
        )
        runner = PipelineRunner(small_raw, cache=cache, jobs=4, executor="process")
        result = runner.run()
        assert result.headline() == PipelineRunner(small_raw).run().headline()
        # eviction kept the bounded tier at its limit throughout
        assert len(list((tmp_path / "tiny-cache").glob("*.pkl"))) <= 1

    def test_warm_parent_cache_skips_the_worker_pool(self, small_raw, tmp_path):
        cache_dir = tmp_path / "stage-cache"
        PipelineRunner(small_raw, cache=StageCache(cache_dir)).run()
        warm = PipelineRunner(
            small_raw, cache=StageCache(cache_dir), jobs=4, executor="process"
        )
        assert warm.run().headline() == PipelineRunner(small_raw).run().headline()
        assert warm.executions == {}

    def test_service_process_executor(self, small_raw, tmp_path):
        with ExpansionService(
            cache_dir=tmp_path / "cache",
            pipeline_jobs=4,
            pipeline_executor="process",
        ) as service:
            service.register_dataset("small", small_raw)
            envelope = service.run(
                ScenarioSpec(dataset=DatasetRef.named("small")), timeout=600
            )
        with ExpansionService() as reference:
            reference.register_dataset("small", small_raw)
            expected = reference.run(
                ScenarioSpec(dataset=DatasetRef.named("small")), timeout=600
            )
        assert envelope["outputs"]["run"] == expected["outputs"]["run"]


class TestJobRetention:
    def test_terminal_jobs_pruned_oldest_first(self, small_raw, tmp_path):
        with ExpansionService(
            cache_dir=tmp_path / "cache", retain_jobs=3, max_workers=1
        ) as service:
            service.register_dataset("small", small_raw)
            jobs = []
            for seed_fleet in range(6):
                job = service.submit(
                    ScenarioSpec(
                        dataset=DatasetRef.named("small"),
                        outputs=("rebalance",),
                        fleet_size=10 + seed_fleet,
                    )
                )
                job.wait(600)
                jobs.append(job)
            # trigger one more submission so pruning sees terminal jobs
            final = service.submit(
                ScenarioSpec(
                    dataset=DatasetRef.named("small"),
                    outputs=("rebalance",),
                    fleet_size=99,
                )
            )
            final.wait(600)
            stats = service.stats()
            assert stats["jobs"] <= 3 + 1  # retained + possibly in-flight row
            assert stats["jobs_pruned"] >= 3
            assert stats["retain_jobs"] == 3
            # oldest pruned, newest retained
            assert service.job(jobs[0].job_id) is None
            assert service.job(final.job_id) is final
            # pruning a job never loses its result envelope
            assert service.results.raw(jobs[0].fingerprint) is not None

    def test_in_flight_jobs_never_pruned(self, small_raw):
        with ExpansionService(retain_jobs=1, max_workers=2) as service:
            service.register_dataset("small", small_raw)
            job = service.submit(ScenarioSpec(dataset=DatasetRef.named("small")))
            job.wait(600)
            assert service.job(job.job_id) is job  # newest terminal retained

    def test_rejects_bad_retention(self):
        with pytest.raises(Exception):
            ExpansionService(retain_jobs=0)


class TestJobTimings:
    def test_job_document_carries_stage_timings(self, small_raw, tmp_path):
        with ExpansionService(cache_dir=tmp_path / "cache") as service:
            service.register_dataset("small", small_raw)
            job = service.submit(ScenarioSpec(dataset=DatasetRef.named("small")))
            envelope = job.wait(600)
        payload = job.to_dict()
        assert "timings" in payload
        report = PerfReport.from_dict(payload["timings"])
        assert report.section("stage:hour") is not None
        assert report.total_s >= 0
        # timings never leak into the canonical result envelope
        assert "timings" not in envelope["outputs"]["run"]


class TestHeadlineFields:
    @pytest.fixture()
    def server(self, small_raw, tmp_path):
        service = ExpansionService(cache_dir=tmp_path / "cache")
        service.register_dataset("small", small_raw)
        server = make_server(service, port=0).start_background()
        try:
            yield server
        finally:
            server.stop()
            service.close()

    def _post(self, server, path, body):
        request = urllib.request.Request(
            server.url + path,
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=600) as response:
            return response.status, json.loads(response.read())

    def _get(self, server, path):
        with urllib.request.urlopen(server.url + path, timeout=600) as response:
            return response.status, json.loads(response.read())

    def test_headline_view_skips_bulk_payloads(self, server):
        status, envelope = self._post(
            server, "/v1/runs", {"dataset": {"kind": "named", "name": "small"}}
        )
        assert status == 200
        fingerprint = envelope["fingerprint"]
        status, slim = self._get(
            server, f"/v1/results/{fingerprint}?fields=headline"
        )
        assert status == 200
        assert slim["fields"] == "headline"
        assert slim["fingerprint"] == fingerprint
        run_view = slim["outputs"]["run"]
        assert run_view == {"headline": envelope["outputs"]["run"]["headline"]}
        assert "network" not in run_view
        assert len(json.dumps(slim)) < len(json.dumps(envelope)) / 10

    def test_unsupported_fields_selection_is_rejected(self, server):
        status, envelope = self._post(
            server, "/v1/runs", {"dataset": {"kind": "named", "name": "small"}}
        )
        url = f"{server.url}/v1/results/{envelope['fingerprint']}?fields=everything"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url, timeout=60)
        assert excinfo.value.code == 400
