"""The repro.perf subsystem: timer semantics and kernel exactness.

The kernel rewrites (Louvain int-indexed local moving, GridIndex
planar-prefilter queries, slice-major temporal collapse) claim
*bit-identical* behaviour, not approximation.  The property tests here
pin that claim against the pre-optimisation reference implementations
snapshotted in :mod:`repro.perf.baseline` and against brute force, on
seeded random inputs.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.community.louvain import louvain
from repro.community.modularity import modularity
from repro.community.partition import Partition
from repro.community.temporal import (
    collapse_buckets_to_stations,
    collapse_to_stations,
    detect_temporal_communities,
    detect_temporal_communities_from_buckets,
    slice_trip_buckets,
)
from repro.config import CommunityConfig
from repro.core.results import ExpansionResult
from repro.geo import GeoPoint, GridIndex
from repro.geo.distance import haversine_m
from repro.graphdb import WeightedGraph
from repro.perf import NULL_TIMER, PerfReport, StageTimer
from repro.perf.baseline import (
    baseline_louvain,
    baseline_modularity,
    baseline_nearest,
    baseline_preassign_to_stations,
    baseline_proximity_components,
    baseline_within,
)
from repro.perf.bench import workload_config


# ---------------------------------------------------------------------------
# StageTimer / PerfReport
# ---------------------------------------------------------------------------


class TestStageTimer:
    def test_sections_nest_and_aggregate(self):
        timer = StageTimer()
        for _ in range(3):
            with timer.section("outer"):
                with timer.section("inner"):
                    time.sleep(0.001)
        report = timer.report()
        outer = report.section("outer")
        assert outer["calls"] == 3
        assert outer["wall_s"] > 0
        (inner,) = outer["children"]
        assert inner["name"] == "inner"
        assert inner["calls"] == 3
        assert inner["wall_s"] <= outer["wall_s"]

    def test_add_and_meta(self):
        timer = StageTimer()
        timer.add("stage:clean", 1.5, cached=True)
        section = timer.report().section("stage:clean")
        assert section["wall_s"] == 1.5
        assert section["meta"] == {"cached": True}

    def test_disabled_timer_records_nothing(self):
        timer = StageTimer(enabled=False)
        with timer.section("x"):
            pass
        timer.add("y", 1.0)
        assert timer.report().sections == []
        with NULL_TIMER.section("z"):
            pass
        assert NULL_TIMER.report().sections == []

    def test_report_roundtrip_and_render(self):
        timer = StageTimer()
        with timer.section("a"):
            pass
        report = timer.report()
        clone = PerfReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()
        assert clone.total_s == report.total_s
        assert "a" in report.render()
        assert "total" in report.render()

    def test_threaded_sections_do_not_interleave(self):
        import threading

        timer = StageTimer()

        def work(name: str) -> None:
            for _ in range(20):
                with timer.section(name):
                    with timer.section(f"{name}-child"):
                        pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report = timer.report()
        assert {s["name"] for s in report.sections} == {f"t{i}" for i in range(4)}
        for section in report.sections:
            assert section["calls"] == 20
            (child,) = section["children"]
            assert child["name"] == f"{section['name']}-child"


class TestResultTimings:
    def test_envelope_excludes_timings_by_default(self, small_result):
        assert small_result.timings is None
        assert "timings" not in small_result.to_dict()

    def test_envelope_carries_timings_when_present(self, small_result):
        payload = small_result.to_dict()
        payload["timings"] = {"type": "PerfReport", "total_s": 1.0, "sections": []}
        restored = ExpansionResult.from_dict(payload)
        assert restored.timings == payload["timings"]
        assert restored.to_dict()["timings"] == payload["timings"]


# ---------------------------------------------------------------------------
# Louvain exactness (rewrite vs pre-rewrite reference)
# ---------------------------------------------------------------------------


def _random_graph(rng: random.Random, tuple_keys: bool = False) -> WeightedGraph:
    n = rng.randint(2, 80)
    graph = WeightedGraph()
    keys = [((i // 7, i % 7) if tuple_keys else i) for i in range(n)]
    for key in keys:
        graph.add_node(key)
    for _ in range(rng.randint(n, 5 * n)):
        u, v = rng.choice(keys), rng.choice(keys)
        weight = (
            float(rng.randint(1, 9)) if rng.random() < 0.7 else rng.random() * 5.0
        )
        graph.add_edge(u, v, weight)  # self-loops included by chance
    return graph


class TestLouvainExactness:
    @pytest.mark.parametrize("tuple_keys", [False, True])
    def test_matches_reference_on_seeded_random_graphs(self, tuple_keys):
        for trial in range(25):
            rng = random.Random(2000 + trial)
            graph = _random_graph(rng, tuple_keys)
            if graph.total_weight <= 0:
                continue
            config = CommunityConfig(seed=trial)
            new = louvain(graph, config)
            old = baseline_louvain(graph, config)
            assert new.partition == old.partition
            assert new.modularity == old.modularity
            assert new.levels == old.levels

    def test_sub_epsilon_near_ties_replay_the_historical_fold(self):
        """Two candidate gains ~1e-12 apart must resolve like the old
        ascending-label scan (hysteresis), not a plain argmax."""
        graph = WeightedGraph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 2, 1.0)
        graph.add_edge(1, 3, 1.0 + 4e-12)
        graph.add_edge(2, 4, 1.0)
        for seed in range(8):
            config = CommunityConfig(seed=seed)
            new = louvain(graph, config)
            old = baseline_louvain(graph, config)
            assert new.partition == old.partition
            assert new.modularity == old.modularity
            assert new.levels == old.levels

    def test_near_tie_fuzz_matches_reference(self):
        """Random graphs whose weights differ by sub-epsilon amounts."""
        for trial in range(15):
            rng = random.Random(7000 + trial)
            n = rng.randint(4, 30)
            graph = WeightedGraph()
            for i in range(n):
                graph.add_node(i)
            for _ in range(rng.randint(n, 4 * n)):
                u, v = rng.randrange(n), rng.randrange(n)
                weight = 1.0 + rng.choice([0.0, 1e-12, 2e-12, 4e-12, 1e-11])
                graph.add_edge(u, v, weight)
            if graph.total_weight <= 0:
                continue
            config = CommunityConfig(seed=trial)
            new = louvain(graph, config)
            old = baseline_louvain(graph, config)
            assert new.partition == old.partition
            assert new.modularity == old.modularity
            assert new.levels == old.levels

    def test_modularity_matches_reference(self):
        for trial in range(15):
            rng = random.Random(3000 + trial)
            graph = _random_graph(rng)
            if graph.total_weight <= 0:
                continue
            labels = {node: rng.randint(0, 5) for node in graph.nodes()}
            partition = Partition.from_assignment(labels)
            for resolution in (1.0, 0.7):
                assert modularity(graph, partition, resolution) == (
                    baseline_modularity(graph, partition, resolution)
                )

    def test_modularity_empty_graph_is_zero_without_assignment_check(self):
        graph = WeightedGraph()
        graph.add_node("a")
        partition = Partition.from_assignment({"b": 1})
        assert modularity(graph, partition) == 0.0


# ---------------------------------------------------------------------------
# Geo query exactness (prefilter vs brute force / reference)
# ---------------------------------------------------------------------------


def _random_city(rng: random.Random, n: int) -> dict[int, GeoPoint]:
    return {
        i: GeoPoint(53.22 + rng.random() * 0.25, -6.42 + rng.random() * 0.40)
        for i in range(n)
    }


class TestGeoExactness:
    def test_within_and_nearest_match_brute_force(self):
        for trial in range(10):
            rng = random.Random(4000 + trial)
            points = _random_city(rng, rng.randint(1, 250))
            index: GridIndex[int] = GridIndex(
                cell_m=rng.choice([25.0, 60.0, 250.0])
            )
            index.extend(points.items())
            for key in list(points):
                if rng.random() < 0.2:
                    index.remove(key)
                    del points[key]
            if not points:
                continue
            for _ in range(15):
                query = GeoPoint(
                    53.22 + rng.random() * 0.25, -6.42 + rng.random() * 0.40
                )
                radius = rng.choice([40.0, 150.0, 900.0, 5000.0])
                brute = sorted(
                    (
                        (key, haversine_m(query, point))
                        for key, point in points.items()
                        if haversine_m(query, point) <= radius
                    ),
                    key=lambda pair: (pair[1], str(pair[0])),
                )
                assert index.within(query, radius) == brute
                assert index.within(query, radius) == baseline_within(
                    index, query, radius
                )
                brute_best = min(
                    ((key, haversine_m(query, point)) for key, point in points.items()),
                    key=lambda pair: pair[1],
                )
                assert index.nearest(query)[1] == brute_best[1]
                assert index.nearest(query) == baseline_nearest(index, query)

    def test_batch_queries_match_single_queries(self):
        rng = random.Random(5)
        points = _random_city(rng, 120)
        index: GridIndex[int] = GridIndex(cell_m=100.0)
        index.extend(points.items())
        queries = [points[key] for key in sorted(points)][:40]
        assert index.within_many(queries, 120.0) == [
            index.within(query, 120.0) for query in queries
        ]
        assert index.nearest_many(queries) == [
            index.nearest(query) for query in queries
        ]

    def test_neighbour_pairs_match_brute_force(self):
        for trial in range(8):
            rng = random.Random(6000 + trial)
            points = _random_city(rng, rng.randint(2, 160))
            radius = rng.choice([60.0, 120.0, 400.0])
            index: GridIndex[int] = GridIndex(
                cell_m=rng.choice([50.0, radius, 2 * radius])
            )
            index.extend(points.items())
            got = {
                frozenset(pair) for pair in index.neighbour_pairs(radius)
            }
            expected = {
                frozenset((a, b))
                for a in points
                for b in points
                if a < b and haversine_m(points[a], points[b]) <= radius
            }
            assert got == expected

    def test_proximity_and_preassign_match_reference(self):
        from repro.cluster.hac import preassign_to_stations, proximity_components

        rng = random.Random(77)
        points = _random_city(rng, 300)
        stations = {key: points[key] for key in list(points)[:20]}
        assert preassign_to_stations(points, stations, 50.0) == (
            baseline_preassign_to_stations(points, stations, 50.0)
        )
        ids = sorted(points)
        assert proximity_components(ids, points, 100.0) == (
            baseline_proximity_components(ids, points, 100.0)
        )

    def test_far_latitude_points_disable_prefilter_but_stay_exact(self):
        index: GridIndex[str] = GridIndex(cell_m=100.0, reference_lat=53.35)
        near = GeoPoint(53.35, -6.26)
        far = GeoPoint(48.85, 2.35)  # Paris: outside the prefilter band
        index.insert("near", near)
        index.insert("far", far)
        assert index._prefilter_ok is False
        query = GeoPoint(53.3501, -6.2601)
        assert index.nearest(query)[0] == "near"
        hits = index.within(query, 50.0)
        assert [key for key, _ in hits] == ["near"]


# ---------------------------------------------------------------------------
# Temporal slice-bucket equivalence
# ---------------------------------------------------------------------------


class TestBucketEquivalence:
    def _trips(self, rng: random.Random, n: int, n_slices: int):
        return [
            (rng.randint(0, 20), rng.randint(0, 20), rng.randrange(n_slices))
            for _ in range(n)
        ]

    def test_detection_from_buckets_equals_triple_api(self):
        rng = random.Random(9)
        trips = self._trips(rng, 800, 7)
        via_triples = detect_temporal_communities(trips, 7)
        via_buckets = detect_temporal_communities_from_buckets(
            slice_trip_buckets(trips, 7)
        )
        assert via_triples.station_partition == via_buckets.station_partition
        assert via_triples.slice_partition == via_buckets.slice_partition
        assert via_triples.modularity == via_buckets.modularity
        assert via_triples.n_slices == via_buckets.n_slices

    def test_collapse_buckets_equals_trip_order_collapse(self):
        rng = random.Random(10)
        trips = self._trips(rng, 500, 5)
        result = detect_temporal_communities(trips, 5)
        by_trips = collapse_to_stations(result.slice_partition, trips)
        by_buckets = collapse_buckets_to_stations(
            result.slice_partition, enumerate(slice_trip_buckets(trips, 5))
        )
        assert by_trips == by_buckets

    def test_network_buckets_match_triples(self, small_result):
        network = small_result.network
        assert slice_trip_buckets(network.day_sliced_trips(), 7) == (
            network.day_slice_buckets()
        )
        assert slice_trip_buckets(network.hour_sliced_trips(), 24) == (
            network.hour_slice_buckets()
        )


class TestWorkloadConfig:
    def test_scales_trip_volume_only(self):
        base = workload_config(1)
        scaled = workload_config(4)
        assert scaled.n_clean_rentals == 4 * base.n_clean_rentals
        assert scaled.n_bikes == 4 * base.n_bikes
        assert scaled.n_clean_locations == base.n_clean_locations
        assert scaled.n_stations == base.n_stations

    def test_rejects_zero_scale(self):
        with pytest.raises(ValueError):
            workload_config(0)


class TestParallelGate:
    """check_parallel_gate on synthetic trajectory entries."""

    @staticmethod
    def _entry(rows):
        return {"label": "synthetic", "parallel": rows}

    def test_passes_when_best_executor_within_limit(self):
        from repro.perf.bench import check_parallel_gate

        ok, message = check_parallel_gate(
            self._entry(
                [
                    {"scale": 1, "jobs": 1, "executor": "serial", "wall_s": 4.0},
                    {"scale": 1, "jobs": 4, "executor": "thread",
                     "wall_s": 4.1, "ratio_vs_serial": 1.02},
                    {"scale": 1, "jobs": 4, "executor": "process",
                     "wall_s": 6.0, "ratio_vs_serial": 1.5},
                ]
            ),
            max_ratio=1.1,
        )
        assert ok
        assert "OK" in message and "1.02x" in message

    def test_fails_when_every_executor_slower(self):
        from repro.perf.bench import check_parallel_gate

        ok, message = check_parallel_gate(
            self._entry(
                [
                    {"scale": 1, "jobs": 4, "executor": "thread",
                     "wall_s": 5.0, "ratio_vs_serial": 1.25},
                    {"scale": 1, "jobs": 4, "executor": "process",
                     "wall_s": 6.0, "ratio_vs_serial": 1.5},
                ]
            ),
            max_ratio=1.1,
        )
        assert not ok
        assert "FAILED" in message
        assert "1.25x" in message  # names the best (least-bad) ratio
        assert "slower than" in message

    def test_fails_on_missing_parallel_block(self):
        from repro.perf.bench import check_parallel_gate

        for entry in ({}, self._entry([]), self._entry(
            [{"scale": 1, "jobs": 1, "executor": "serial", "wall_s": 4.0}]
        )):
            ok, message = check_parallel_gate(entry)
            assert not ok
            assert "no jobs-4 measurements" in message

    def test_default_limit_is_parity_plus_noise(self):
        from repro.perf.bench import (
            DEFAULT_PARALLEL_MAX_RATIO,
            check_parallel_gate,
        )

        assert 1.0 < DEFAULT_PARALLEL_MAX_RATIO <= 1.2
        ok, _ = check_parallel_gate(
            self._entry(
                [{"scale": 1, "jobs": 4, "executor": "thread",
                  "wall_s": 1.0, "ratio_vs_serial": 1.0}]
            )
        )
        assert ok
