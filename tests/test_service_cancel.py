"""Cooperative job cancellation: runner boundaries, races, cache safety."""

import threading

import pytest

from repro.exceptions import JobCancelledError, PipelineCancelledError
from repro.pipeline import PipelineRunner, run_sweep
from repro.pipeline.cache import StageCache
from repro.service import CANCELLED, DONE, DatasetRef, ExpansionService, ScenarioSpec


class TestRunnerCancel:
    def test_cancel_before_start_runs_nothing(self, small_raw):
        runner = PipelineRunner(small_raw, cancel=lambda: True)
        with pytest.raises(PipelineCancelledError):
            runner.run()
        assert runner.executions == {}

    def test_cancel_mid_run_keeps_completed_stages_cached(self, small_raw):
        cache = StageCache()
        seen: list[str] = []
        original = PipelineRunner.stage

        def cancel() -> bool:
            return len(seen) >= 2  # abort at the third stage boundary

        runner = PipelineRunner(small_raw, cache=cache, cancel=cancel)

        def tracking_stage(self, name):
            value = original(self, name)
            seen.append(name)
            return value

        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(PipelineRunner, "stage", tracking_stage)
            with pytest.raises(PipelineCancelledError):
                runner.run()
        executed = set(runner.executions)
        assert executed  # something ran before the boundary fired

        # Every stage that ran is warm: a fresh uncancelled runner on the
        # same cache recomputes only the stages the aborted run never
        # reached — the cache was not corrupted, only truncated.
        clean = PipelineRunner(small_raw, cache=cache)
        result = clean.run()
        assert result.basic.n_communities >= 1
        assert not (executed & set(clean.executions))

    def test_sweep_cancel_before_start(self, small_raw):
        from repro.config import PAPER_CONFIG

        with pytest.raises(PipelineCancelledError):
            run_sweep(small_raw, [PAPER_CONFIG], cancel=lambda: True)


class TestServiceCancel:
    def test_cancel_queued_job_is_deterministic(self, small_raw):
        """A job parked behind a busy worker cancels before it starts."""
        with ExpansionService(max_workers=1) as service:
            service.register_dataset("small", small_raw)
            blocker = service.submit(
                ScenarioSpec(
                    dataset=DatasetRef.named("small"),
                    overrides={"community.seed": 41},
                )
            )
            queued = service.submit(
                ScenarioSpec(
                    dataset=DatasetRef.named("small"),
                    overrides={"community.seed": 42},
                )
            )
            returned = service.cancel(queued.job_id)
            assert returned is queued
            blocker.wait(300)
            with pytest.raises(JobCancelledError):
                queued.wait(300)
            assert queued.status == CANCELLED
            assert queued.envelope() is None
            assert queued.finished

    def test_cancel_unknown_job_returns_none(self, small_raw):
        with ExpansionService() as service:
            assert service.cancel("job-424242") is None

    def test_cancel_racing_a_finishing_job_loses_gracefully(self, small_raw):
        """A cancel that arrives after completion never voids the result."""
        with ExpansionService(max_workers=2) as service:
            service.register_dataset("small", small_raw)
            job = service.submit(ScenarioSpec(dataset=DatasetRef.named("small")))
            envelope = job.wait(300)
            returned = service.cancel(job.job_id)
            assert returned is job
            assert job.status == DONE
            assert job.cancel_requested is False  # terminal: flag is moot
            assert job.wait(1) == envelope  # result still served
            document = job.to_dict()
            assert document["status"] == DONE
            assert document["result_url"].endswith(job.fingerprint)

    def test_cancelled_job_does_not_corrupt_the_stage_cache(self, small_raw, tmp_path):
        """After a cancel, resubmitting the same spec completes cleanly."""
        with ExpansionService(max_workers=1, cache_dir=tmp_path / "cache") as service:
            service.register_dataset("small", small_raw)
            spec = ScenarioSpec(
                dataset=DatasetRef.named("small"),
                overrides={"community.seed": 77},
            )
            blocker = service.submit(
                ScenarioSpec(
                    dataset=DatasetRef.named("small"),
                    overrides={"community.seed": 78},
                )
            )
            victim = service.submit(spec)
            service.cancel(victim.job_id)
            blocker.wait(300)
            with pytest.raises(JobCancelledError):
                victim.wait(300)
            # The fingerprint is free again: a resubmission is a new job
            # (the cancelled one never produced an envelope) and runs to
            # completion over the shared cache.
            envelope = service.run(spec, timeout=300)
            assert envelope["outputs"]["run"]["type"] == "ExpansionResult"

    def test_cancelled_jobs_count_as_terminal_for_retention(self, small_raw):
        with ExpansionService(max_workers=1, retain_jobs=1) as service:
            service.register_dataset("small", small_raw)
            blocker = service.submit(
                ScenarioSpec(
                    dataset=DatasetRef.named("small"),
                    overrides={"community.seed": 51},
                )
            )
            victim = service.submit(
                ScenarioSpec(
                    dataset=DatasetRef.named("small"),
                    overrides={"community.seed": 52},
                )
            )
            service.cancel(victim.job_id)
            blocker.wait(300)
            with pytest.raises(JobCancelledError):
                victim.wait(300)
            # A later submission prunes the cancelled document once the
            # retention budget (1) is exceeded by terminal jobs.
            third = service.submit(
                ScenarioSpec(
                    dataset=DatasetRef.named("small"),
                    overrides={"community.seed": 53},
                )
            )
            third.wait(300)
            service.submit(
                ScenarioSpec(
                    dataset=DatasetRef.named("small"),
                    overrides={"community.seed": 51},
                )
            ).wait(300)
            assert service.jobs_pruned >= 1

    def test_waiters_of_a_shared_job_all_see_cancellation(self, small_raw):
        with ExpansionService(max_workers=1) as service:
            service.register_dataset("small", small_raw)
            blocker = service.submit(
                ScenarioSpec(
                    dataset=DatasetRef.named("small"),
                    overrides={"community.seed": 61},
                )
            )
            spec = ScenarioSpec(
                dataset=DatasetRef.named("small"),
                overrides={"community.seed": 62},
            )
            first = service.submit(spec)
            second = service.submit(spec)  # dedup joins the same job
            assert second is first
            assert first.subscribers == 2
            errors: list[Exception] = []

            def waiter():
                try:
                    first.wait(300)
                except Exception as error:  # noqa: BLE001 - recorded for assert
                    errors.append(error)

            threads = [threading.Thread(target=waiter) for _ in range(2)]
            for thread in threads:
                thread.start()
            service.cancel(first.job_id)
            blocker.wait(300)
            for thread in threads:
                thread.join(300)
            assert len(errors) == 2
            assert all(isinstance(e, JobCancelledError) for e in errors)
