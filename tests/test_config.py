"""Tests for the configuration objects and their validation."""

import pytest

from repro.config import (
    ClusteringConfig,
    CommunityConfig,
    EARTH_RADIUS_M,
    PAPER_CONFIG,
    PipelineConfig,
    SelectionConfig,
    TemporalCommunityConfig,
)
from repro.exceptions import ConfigError


class TestPaperDefaults:
    def test_paper_thresholds(self):
        assert PAPER_CONFIG.clustering.cluster_boundary_m == 100.0
        assert PAPER_CONFIG.clustering.preassign_radius_m == 50.0
        assert PAPER_CONFIG.clustering.linkage == "complete"
        assert PAPER_CONFIG.selection.secondary_distance_m == 250.0
        assert PAPER_CONFIG.selection.centroid_proximity_m == 50.0
        assert PAPER_CONFIG.selection.degree_threshold is None

    def test_earth_radius_reasonable(self):
        assert 6.35e6 < EARTH_RADIUS_M < 6.4e6

    def test_configs_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_CONFIG.clustering.cluster_boundary_m = 1.0  # type: ignore[misc]


class TestValidation:
    def test_clustering_rejects_bad_boundary(self):
        with pytest.raises(ConfigError):
            ClusteringConfig(cluster_boundary_m=0.0)
        with pytest.raises(ConfigError):
            ClusteringConfig(preassign_radius_m=-1.0)

    def test_clustering_rejects_unknown_linkage(self):
        with pytest.raises(ConfigError):
            ClusteringConfig(linkage="ward")

    def test_selection_rejects_negative(self):
        with pytest.raises(ConfigError):
            SelectionConfig(secondary_distance_m=-1.0)
        with pytest.raises(ConfigError):
            SelectionConfig(centroid_proximity_m=-1.0)
        with pytest.raises(ConfigError):
            SelectionConfig(degree_threshold=-1)

    def test_community_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            CommunityConfig(resolution=0.0)
        with pytest.raises(ConfigError):
            CommunityConfig(max_passes=0)

    def test_temporal_inherits_and_extends(self):
        config = TemporalCommunityConfig(coupling=0.5, resolution=2.0)
        assert config.coupling == 0.5
        assert config.resolution == 2.0
        with pytest.raises(ConfigError):
            TemporalCommunityConfig(coupling=-0.1)
        with pytest.raises(ConfigError):
            TemporalCommunityConfig(resolution=0.0)

    def test_pipeline_composition(self):
        config = PipelineConfig(
            selection=SelectionConfig(secondary_distance_m=400.0)
        )
        assert config.selection.secondary_distance_m == 400.0
        assert config.clustering.cluster_boundary_m == 100.0


class TestOverridePaths:
    """Dotted ``section.field`` keys fail loudly, never silently."""

    def test_derive_applies_known_paths(self):
        derived = PAPER_CONFIG.derive(
            {"temporal.coupling": 0.2, "selection.secondary_distance_m": 400.0}
        )
        assert derived.temporal.coupling == 0.2
        assert derived.selection.secondary_distance_m == 400.0
        # The original is untouched (derive copies).
        assert PAPER_CONFIG.temporal.coupling == 0.12

    @pytest.mark.parametrize(
        "path",
        [
            "bogus.coupling",       # unknown section
            "temporal.bogus",       # unknown field
            "coupling",             # no section
            "temporal.",            # empty field
            "",                     # empty path
            "temporal.coupling.x",  # too many segments
            "community.coupling",   # field of a different section
        ],
    )
    def test_derive_rejects_unknown_paths(self, path):
        with pytest.raises(ConfigError):
            PAPER_CONFIG.derive({path: 1})

    def test_unknown_field_error_lists_valid_fields(self):
        with pytest.raises(ConfigError, match="valid fields"):
            PAPER_CONFIG.derive({"temporal.bogus": 1})

    def test_derive_rejects_invalid_values(self):
        with pytest.raises(ConfigError):
            PAPER_CONFIG.derive({"temporal.coupling": -1.0})

    def test_validate_override_path_splits(self):
        assert PipelineConfig.validate_override_path("temporal.coupling") == (
            "temporal", "coupling"
        )


class TestExceptionsHierarchy:
    def test_everything_derives_from_repro_error(self):
        from repro import exceptions

        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, exceptions.ReproError) or (
                    obj is exceptions.ReproError
                )

    def test_catching_base_class(self):
        from repro.exceptions import GraphError, MissingNodeError, ReproError

        try:
            raise MissingNodeError("x")
        except GraphError:
            pass
        try:
            raise MissingNodeError("x")
        except ReproError:
            pass
