"""Concurrency and access-stamp-policy tests for :mod:`repro.store`.

The storm tests hammer one :class:`~repro.store.Namespace` from many
threads with a mixed get/put/touch/evict workload and then check the
invariants the parallel pipeline depends on: no deadlock, no torn or
lost entries, exact quota accounting once the storm settles, and a
lock-held entry never chosen as an eviction victim.

The stamp-policy tests pin the de-contended read path: unbounded
namespaces (the process executor's rendezvous shape) write **zero**
recency stamps per hit, bounded ones coalesce stamps per key within
``touch_window_s`` and flush them on :meth:`flush_touches` /
:meth:`close` / any eviction scan.
"""

from __future__ import annotations

import threading

import pytest

from repro.pipeline.cache import MISS, StageCache
from repro.store import Namespace, make_backend

BACKENDS = ("memory", "dir", "sharded")

STORM_THREADS = 8
STORM_OPS_PER_THREAD = 150
STORM_JOIN_TIMEOUT_S = 60.0


def make_namespace(kind: str, tmp_path, **kwargs) -> Namespace:
    root = None if kind == "memory" else tmp_path / kind
    return Namespace(make_backend(kind, root), suffix=".pkl", **kwargs)


class CountingBackend:
    """Delegating backend wrapper that counts ``touch`` calls."""

    def __init__(self, inner):
        self.inner = inner
        self.touches = 0
        self._mutex = threading.Lock()

    def touch(self, key):
        with self._mutex:
            self.touches += 1
        self.inner.touch(key)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def payload_for(key: str) -> bytes:
    return key.encode("ascii") * 16


@pytest.mark.parametrize("kind", BACKENDS)
def test_mixed_storm_settles_consistent(kind, tmp_path):
    """No deadlock, no lost entries, exact accounting after a storm."""
    namespace = make_namespace(
        kind, tmp_path, max_entries=32, touch_window_s=0.05
    )
    pool = [f"{i:02x}{'ab' * 8}" for i in range(48)]
    for key in pool[:16]:  # warm start so early gets can hit
        namespace.put(key, payload_for(key))
    gets = [0] * STORM_THREADS
    puts = [0] * STORM_THREADS

    def worker(worker_id: int) -> None:
        for i in range(STORM_OPS_PER_THREAD):
            key = pool[(worker_id * 13 + i * 7) % len(pool)]
            op = (worker_id + i) % 4
            if op == 0:
                namespace.put(key, payload_for(key))
                puts[worker_id] += 1
            elif op == 3 and i % 10 == 0:
                namespace.evict()
            elif op == 3:
                namespace.touch(key)
            else:
                data = namespace.get(key)
                assert data is None or data == payload_for(key)
                gets[worker_id] += 1

    threads = [
        threading.Thread(target=worker, args=(worker_id,))
        for worker_id in range(STORM_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=STORM_JOIN_TIMEOUT_S)
    stuck = [thread for thread in threads if thread.is_alive()]
    assert not stuck, f"storm deadlocked: {len(stuck)} threads never finished"

    # Counters are exact: every get was a hit or a miss, every put a
    # store (16 warm-up puts included).
    assert namespace.hits + namespace.misses == sum(gets)
    assert namespace.stores == sum(puts) + 16

    # No torn entries: every listed key reads back complete and correct.
    namespace.flush_touches()
    namespace.evict()
    survivors = namespace.keys()
    assert len(survivors) <= 32
    for key in survivors:
        assert namespace.get(key) == payload_for(key)
    # Accounting agrees with a fresh per-entry scan.
    assert namespace.entries() == len(survivors)
    assert namespace.total_bytes() == sum(
        namespace.entry_bytes(key) for key in survivors
    )


@pytest.mark.parametrize("kind", BACKENDS)
def test_storm_never_evicts_lock_held_entry(kind, tmp_path):
    """An entry whose key lock is held survives any eviction pressure."""
    namespace = make_namespace(kind, tmp_path, max_entries=1)
    victim = "aa" * 10
    namespace.put(victim, payload_for(victim))
    with namespace.lock(victim):

        def writer(worker_id: int) -> None:
            for i in range(40):
                key = f"{worker_id:02x}{i:02x}{'cd' * 6}"
                namespace.put(key, payload_for(key))

        threads = [
            threading.Thread(target=writer, args=(worker_id,))
            for worker_id in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=STORM_JOIN_TIMEOUT_S)
        assert not any(thread.is_alive() for thread in threads)
        namespace.evict()
        assert victim in namespace
        assert namespace.get(victim) == payload_for(victim)
    # Lock released: the victim is fair game again.
    namespace.put("ff" * 10, payload_for("ff" * 10))
    namespace.evict()
    assert namespace.entries() <= 1


@pytest.mark.parametrize("kind", BACKENDS)
def test_unbounded_namespace_stamps_nothing(kind, tmp_path):
    """Warm hits on an unbounded namespace issue zero stamp writes."""
    backend = CountingBackend(
        make_backend(kind, None if kind == "memory" else tmp_path / kind)
    )
    namespace = Namespace(backend, suffix=".pkl")
    assert namespace.unbounded
    keys = [f"{i:02x}{'ef' * 8}" for i in range(10)]
    for key in keys:
        namespace.put(key, payload_for(key))
    for _ in range(20):
        for key in keys:
            assert namespace.get(key) == payload_for(key)
    assert backend.touches == 0
    assert namespace.touch_writes == 0
    assert namespace.hits == 200


def test_rendezvous_stage_cache_stamps_nothing(tmp_path):
    """The process executor's rendezvous shape pays zero stamp writes.

    Regression: :meth:`Namespace.get` used to stamp recency on every
    hit even when no quota could ever evict anything, which serialised
    the parallel stage fan-out on mtime writes to the rendezvous
    directory.
    """
    cache = StageCache.from_spec(("dir", str(tmp_path / "rendezvous")))
    assert cache.namespace is not None and cache.namespace.unbounded
    cache.put("stage-clean", {"value": 1})
    cache.clear_memory()  # force durable-tier reads, as a worker would
    for _ in range(50):
        assert cache.get("stage-clean") is not MISS
        cache.clear_memory()
    assert cache.namespace.touch_writes == 0


@pytest.mark.parametrize("kind", BACKENDS)
def test_bounded_gets_still_refresh_recency(kind, tmp_path):
    """Default (window 0) bounded namespaces stamp every hit through."""
    backend = CountingBackend(
        make_backend(kind, None if kind == "memory" else tmp_path / kind)
    )
    namespace = Namespace(backend, suffix=".pkl", max_entries=10)
    key = "ab" * 10
    namespace.put(key, b"x")
    for _ in range(5):
        namespace.get(key)
    assert backend.touches == 5
    assert namespace.touch_writes == 5


def test_debounce_coalesces_hits_within_window(tmp_path):
    namespace = make_namespace(
        "dir", tmp_path, max_entries=10, touch_window_s=3600.0
    )
    key = "cd" * 10
    namespace.put(key, b"x")
    for _ in range(10):
        namespace.get(key)
    # First hit writes through; the other nine only mark pending.
    assert namespace.touch_writes == 1
    assert namespace.flush_touches() == 1
    assert namespace.touch_writes == 2
    # Nothing pending: a second flush is a no-op.
    assert namespace.flush_touches() == 0


def test_debounce_flushes_on_close(tmp_path):
    namespace = make_namespace(
        "dir", tmp_path, max_entries=10, touch_window_s=3600.0
    )
    key = "ef" * 10
    namespace.put(key, b"x")
    namespace.get(key)  # writes through
    namespace.get(key)  # pending
    writes_before = namespace.touch_writes
    namespace.close()
    assert namespace.touch_writes == writes_before + 1


def test_eviction_scan_flushes_pending_stamps(tmp_path):
    """LRU ordering sees coalesced hits: eviction flushes them first."""
    backend = CountingBackend(make_backend("dir", tmp_path / "ns"))
    namespace = Namespace(
        backend, suffix=".pkl", max_entries=2, touch_window_s=3600.0
    )
    namespace.put("aa" * 8, b"x")
    namespace.get("aa" * 8)  # write-through stamp
    namespace.get("aa" * 8)  # pending
    writes_before = backend.touches
    namespace.put("bb" * 8, b"x")  # triggers an eviction scan (no evictions)
    assert backend.touches == writes_before + 1  # the pending stamp flushed


def test_explicit_touch_writes_through_and_resets_window(tmp_path):
    namespace = make_namespace(
        "dir", tmp_path, max_entries=10, touch_window_s=3600.0
    )
    key = "ab" * 10
    namespace.put(key, b"x")
    namespace.touch(key)
    namespace.touch(key)
    assert namespace.touch_writes == 2
    # The explicit touch opened a window: the next hit coalesces.
    namespace.get(key)
    assert namespace.touch_writes == 2
    assert namespace.flush_touches() == 1


def test_stage_cache_close_flushes_namespace(tmp_path):
    cache = StageCache(
        tmp_path / "cache", max_entries=10, memory_slots=0
    )
    assert cache.namespace is not None
    # The stage namespace ships with a nonzero debounce window.
    assert cache.namespace.touch_window_s > 0
    cache.put("stage-a", 1)
    cache.get("stage-a")  # write-through
    cache.get("stage-a")  # pending
    writes_before = cache.namespace.touch_writes
    cache.close()
    assert cache.namespace.touch_writes == writes_before + 1


def test_negative_touch_window_rejected(tmp_path):
    with pytest.raises(ValueError):
        make_namespace("memory", tmp_path, touch_window_s=-1.0)


def test_lock_is_striped_and_stable():
    namespace = make_namespace("memory", None)
    key = "aa" * 10
    assert namespace.lock(key) is namespace.lock(key)
    # Some other key shares the stripe eventually; that only means the
    # two serialise — the lock object is still a plain mutex.
    with namespace.lock(key):
        pass
