"""Additional property-based tests: CSV round-trips, simulator
conservation laws, table-engine invariants."""

from datetime import datetime, timedelta

from hypothesis import given, settings, strategies as st

from repro.data import (
    LocationRecord,
    MobyDataset,
    RentalRecord,
    read_locations,
    read_rentals,
    write_locations,
    write_rentals,
)
from repro.geo import GeoPoint, destination_point
from repro.sim import FleetSimulator, TripRequest

CENTER = GeoPoint(53.3473, -6.2591)

location_st = st.builds(
    LocationRecord,
    st.integers(0, 10_000),
    st.one_of(st.none(), st.floats(-89.0, 89.0, allow_nan=False)),
    st.one_of(st.none(), st.floats(-179.0, 179.0, allow_nan=False)),
    st.booleans(),
    st.text(
        alphabet=st.characters(
            blacklist_categories=("Cs", "Cc"), blacklist_characters="\r\n"
        ),
        max_size=20,
    ),
)

timestamp_st = st.datetimes(
    min_value=datetime(2020, 1, 1), max_value=datetime(2021, 9, 30)
).map(lambda ts: ts.replace(microsecond=0))

rental_st = st.builds(
    RentalRecord,
    st.integers(0, 10_000),
    st.integers(1, 95),
    timestamp_st,
    timestamp_st,
    st.one_of(st.none(), st.integers(0, 10_000)),
    st.one_of(st.none(), st.integers(0, 10_000)),
)


class TestCsvRoundTripProperties:
    @settings(max_examples=25, deadline=None)
    @given(records=st.lists(location_st, max_size=20, unique_by=lambda r: r.location_id))
    def test_locations_round_trip(self, tmp_path_factory, records):
        path = tmp_path_factory.mktemp("csv") / "locations.csv"
        write_locations(path, records)
        assert read_locations(path) == records

    @settings(max_examples=25, deadline=None)
    @given(records=st.lists(rental_st, max_size=20, unique_by=lambda r: r.rental_id))
    def test_rentals_round_trip(self, tmp_path_factory, records):
        path = tmp_path_factory.mktemp("csv") / "rentals.csv"
        write_rentals(path, records)
        assert read_rentals(path) == records


class TestDatasetInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(location_st, max_size=15, unique_by=lambda r: r.location_id),
        st.lists(rental_st, max_size=15, unique_by=lambda r: r.rental_id),
    )
    def test_cleaning_never_grows_and_always_consistent(self, locations, rentals):
        from repro.data import clean_dataset

        raw = MobyDataset.from_records(locations, rentals)
        cleaned, report = clean_dataset(raw)
        assert cleaned.n_rentals <= raw.n_rentals
        assert cleaned.n_locations <= raw.n_locations
        assert report.before.n_rentals == raw.n_rentals
        assert report.after.n_rentals == cleaned.n_rentals
        cleaned.db.check_integrity()
        # Every surviving rental references surviving locations inside
        # Dublin, and every surviving location is referenced.
        referenced = cleaned.referenced_location_ids()
        for record in cleaned.locations():
            assert record.location_id in referenced
            assert record.has_coordinates


def _stations() -> dict[int, GeoPoint]:
    return {
        i: destination_point(CENTER, 45.0 * i, 600.0 * (1 + i % 3))
        for i in range(6)
    }


request_st = st.builds(
    TripRequest,
    st.datetimes(
        min_value=datetime(2020, 6, 1), max_value=datetime(2020, 6, 7)
    ),
    st.integers(0, 5),
    st.integers(0, 5),
    st.floats(min_value=1.0, max_value=120.0, allow_nan=False),
)


class TestSimulatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(request_st, max_size=60), st.integers(1, 12))
    def test_requests_conserved_and_bikes_conserved(self, requests, n_bikes):
        simulator = FleetSimulator(_stations(), n_bikes=n_bikes)
        result = simulator.run(requests)
        assert result.served + result.unserved == result.n_requests
        assert result.n_requests == len(requests)
        assert 0.0 <= result.service_rate <= 1.0
        assert 0.0 <= result.walk_rate <= 1.0

    @settings(max_examples=15, deadline=None)
    @given(st.lists(request_st, max_size=40))
    def test_more_bikes_never_serve_less(self, requests):
        few = FleetSimulator(_stations(), n_bikes=1).run(requests)
        many = FleetSimulator(_stations(), n_bikes=30).run(requests)
        assert many.served >= few.served
