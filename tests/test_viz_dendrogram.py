"""Tests for the dendrogram renderer."""

import pytest

np = pytest.importorskip("numpy")

from repro.cluster import linkage_cluster
from repro.viz import render_dendrogram


def small_dendrogram():
    points = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0], [11.0, 0.0]])
    diff = points[:, None, :] - points[None, :, :]
    matrix = np.sqrt((diff**2).sum(axis=2))
    return linkage_cluster(matrix)


class TestRenderDendrogram:
    def test_document_contains_all_merges(self):
        dendrogram = small_dendrogram()
        canvas = render_dendrogram(dendrogram, title="test")
        text = canvas.to_string()
        # Each merge draws three line segments, plus the axis line.
        assert text.count("<line") >= 3 * len(dendrogram.merges) + 1
        assert "test" in text

    def test_cut_line_drawn(self):
        canvas = render_dendrogram(small_dendrogram(), cut_height=2.0)
        assert "cut 2" in canvas.to_string()

    def test_cut_above_max_omitted(self):
        canvas = render_dendrogram(small_dendrogram(), cut_height=1e9)
        assert "cut" not in canvas.to_string()

    def test_single_point_dendrogram(self):
        dendrogram = linkage_cluster(np.zeros((1, 1)))
        canvas = render_dendrogram(dendrogram)
        assert canvas.to_string().startswith("<svg")
