"""Unit tests for polygons and the Dublin geography model."""

import pytest

from repro.exceptions import GeoError
from repro.geo import (
    DUBLIN_BBOX,
    GeoPoint,
    LANDMARKS,
    Polygon,
    Region,
    in_dublin,
    is_admissible,
    on_land,
)

SQUARE = Polygon.from_coords([(0.0, 0.0), (0.0, 10.0), (10.0, 10.0), (10.0, 0.0)])


class TestPolygon:
    def test_needs_three_vertices(self):
        with pytest.raises(GeoError):
            Polygon.from_coords([(0.0, 0.0), (1.0, 1.0)])

    def test_contains_center(self):
        assert SQUARE.contains(GeoPoint(5.0, 5.0))

    def test_excludes_outside(self):
        assert not SQUARE.contains(GeoPoint(11.0, 5.0))
        assert not SQUARE.contains(GeoPoint(5.0, -0.1))

    def test_concave_polygon(self):
        # A "C" shape (notch spans lon 2-4 below lat 4): points in the
        # notch are outside, arms and bar are inside.
        concave = Polygon.from_coords(
            [(0, 0), (6, 0), (6, 6), (0, 6), (0, 4), (4, 4), (4, 2), (0, 2)]
        )
        assert concave.contains(GeoPoint(1.0, 1.0))   # left arm
        assert concave.contains(GeoPoint(1.0, 5.0))   # right arm
        assert concave.contains(GeoPoint(5.0, 3.0))   # top bar
        assert not concave.contains(GeoPoint(1.0, 3.0))  # notch

    def test_bounding_box(self):
        box = SQUARE.bounding_box
        assert box.south == 0.0 and box.north == 10.0

    def test_bbox_short_circuit(self):
        assert not SQUARE.contains(GeoPoint(50.0, 50.0))

    def test_area(self):
        assert SQUARE.area_deg2() == pytest.approx(100.0)


class TestRegion:
    def test_hole_excluded(self):
        hole = Polygon.from_coords([(4.0, 4.0), (4.0, 6.0), (6.0, 6.0), (6.0, 4.0)])
        region = Region(shell=SQUARE, holes=(hole,))
        assert region.contains(GeoPoint(1.0, 1.0))
        assert not region.contains(GeoPoint(5.0, 5.0))

    def test_no_holes(self):
        region = Region(shell=SQUARE)
        assert region.contains(GeoPoint(5.0, 5.0))


class TestDublinModel:
    def test_city_center_is_admissible(self):
        assert is_admissible(LANDMARKS["city_center"])

    def test_all_landmarks_admissible(self):
        for name, point in LANDMARKS.items():
            assert in_dublin(point), name
            assert on_land(point), name

    def test_bay_point_not_on_land(self):
        bay = GeoPoint(53.344, -6.10)
        assert in_dublin(bay)
        assert not on_land(bay)

    def test_north_of_dublin_outside(self):
        assert not in_dublin(GeoPoint(53.52, -6.30))

    def test_irish_sea_outside_everything(self):
        point = GeoPoint(53.35, -5.90)
        assert not in_dublin(point)
        assert not is_admissible(point)

    def test_bbox_matches_constants(self):
        assert DUBLIN_BBOX.contains(LANDMARKS["city_center"])
        assert not DUBLIN_BBOX.contains(GeoPoint(53.0, -6.3))
