"""Tests for label propagation, fast-greedy CNM and the map equation."""

import math

import pytest

from repro.community import (
    Partition,
    fast_greedy,
    fast_greedy_with_score,
    infomap,
    label_propagation,
    louvain,
    map_equation,
    modularity,
)
from repro.config import CommunityConfig
from repro.exceptions import CommunityError
from repro.graphdb import WeightedGraph


def two_cliques(k: int = 5, bridge_weight: float = 0.5) -> WeightedGraph:
    graph = WeightedGraph()
    for offset in (0, k):
        for i in range(k):
            for j in range(i + 1, k):
                graph.add_edge(offset + i, offset + j, 1.0)
    graph.add_edge(0, k, bridge_weight)
    return graph


def ring_of_cliques(n_cliques: int = 4, k: int = 5) -> WeightedGraph:
    graph = WeightedGraph()
    for c in range(n_cliques):
        base = c * k
        for i in range(k):
            for j in range(i + 1, k):
                graph.add_edge(base + i, base + j, 1.0)
        graph.add_edge(base, ((c + 1) % n_cliques) * k, 0.5)
    return graph


class TestLabelPropagation:
    def test_two_cliques(self):
        partition = label_propagation(two_cliques(), seed=5)
        assert partition[0] == partition[4]
        assert partition[5] == partition[9]
        assert partition[0] != partition[5]

    def test_deterministic_given_seed(self):
        graph = ring_of_cliques()
        a = label_propagation(graph, seed=2)
        b = label_propagation(graph, seed=2)
        assert a.assignment == b.assignment

    def test_empty_graph_rejected(self):
        with pytest.raises(CommunityError):
            label_propagation(WeightedGraph())

    def test_isolated_node_keeps_own_label(self):
        graph = two_cliques()
        graph.add_node("lonely")
        partition = label_propagation(graph, seed=1)
        others = {partition[n] for n in graph.nodes() if n != "lonely"}
        assert partition["lonely"] not in others


class TestFastGreedy:
    def test_two_cliques(self):
        partition = fast_greedy(two_cliques())
        assert partition.n_communities == 2

    def test_ring_of_cliques(self):
        partition = fast_greedy(ring_of_cliques())
        assert partition.n_communities == 4

    def test_score_close_to_louvain(self):
        graph = ring_of_cliques(5, 6)
        _, cnm_score = fast_greedy_with_score(graph)
        louvain_score = louvain(graph).modularity
        assert cnm_score >= louvain_score - 0.05

    def test_weighted_graph(self):
        graph = WeightedGraph.from_edges(
            [(0, 1, 10.0), (1, 2, 10.0), (0, 2, 10.0),
             (3, 4, 10.0), (4, 5, 10.0), (3, 5, 10.0),
             (2, 3, 0.1)]
        )
        partition = fast_greedy(graph)
        assert partition.n_communities == 2
        assert partition[0] == partition[1] == partition[2]

    def test_zero_weight_rejected(self):
        graph = WeightedGraph()
        graph.add_node(1)
        with pytest.raises(CommunityError):
            fast_greedy(graph)

    def test_self_loops_tolerated(self):
        graph = two_cliques()
        graph.add_edge(0, 0, 2.0)
        partition = fast_greedy(graph)
        assert partition.n_communities == 2


class TestMapEquation:
    def test_codelength_positive(self):
        graph = two_cliques()
        partition = Partition.from_assignment(
            {node: (0 if node < 5 else 1) for node in graph.nodes()}
        )
        assert map_equation(graph, partition) > 0.0

    def test_good_partition_shorter_than_bad(self):
        graph = ring_of_cliques()
        good = Partition.from_assignment(
            {node: node // 5 for node in graph.nodes()}
        )
        bad = Partition.from_assignment(
            {node: node % 4 for node in graph.nodes()}
        )
        assert map_equation(graph, good) < map_equation(graph, bad)

    def test_all_in_one_module_codelength_is_node_entropy(self):
        graph = two_cliques()
        partition = Partition.from_assignment({n: 0 for n in graph.nodes()})
        # One module: no exit terms; L = H(visit rates).
        total = 2.0 * graph.total_weight
        entropy = -sum(
            (graph.strength(n) / total) * math.log2(graph.strength(n) / total)
            for n in graph.nodes()
        )
        assert map_equation(graph, partition) == pytest.approx(entropy)

    def test_infomap_finds_cliques(self):
        result = infomap(ring_of_cliques(), CommunityConfig(seed=4))
        assert result.n_communities == 4
        assert result.codelength == pytest.approx(
            map_equation(ring_of_cliques(), result.partition)
        )

    def test_infomap_beats_singletons(self):
        graph = ring_of_cliques()
        result = infomap(graph, CommunityConfig(seed=4))
        singletons = Partition.from_assignment(
            {node: index for index, node in enumerate(graph.nodes())}
        )
        assert result.codelength < map_equation(graph, singletons)

    def test_zero_weight_rejected(self):
        graph = WeightedGraph()
        graph.add_node(1)
        partition = Partition.from_assignment({1: 0})
        with pytest.raises(CommunityError):
            map_equation(graph, partition)

    def test_all_algorithms_agree_on_clear_structure(self):
        graph = ring_of_cliques(3, 7)
        expected = {
            frozenset(range(c * 7, (c + 1) * 7)) for c in range(3)
        }
        for algorithm in (
            lambda g: louvain(g).partition,
            fast_greedy,
            lambda g: label_propagation(g, seed=9),
            lambda g: infomap(g).partition,
        ):
            partition = algorithm(graph)
            found = {
                frozenset(members) for members in partition.communities().values()
            }
            assert found == expected
