"""Tests for the analysis package (OD matrices, profiles, rebalancing)."""

import pytest

from repro.analysis import (
    ODMatrix,
    UNIFORM_WEEKEND_SHARE,
    behavioural_outliers,
    build_profiles,
    mean_profile,
    plan_weekend_rebalancing,
    profile_distance,
)
from repro.community import Partition
from repro.core import TripOD


TRIPS = [
    TripOD(1, 2, 0, 8),
    TripOD(1, 2, 1, 9),
    TripOD(2, 1, 0, 17),
    TripOD(1, 1, 5, 13),
    TripOD(3, 1, 6, 12),
]


class TestODMatrix:
    def test_counts(self):
        matrix = ODMatrix.from_trips(TRIPS)
        assert matrix.station_ids == [1, 2, 3]
        assert matrix.count(1, 2) == 2
        assert matrix.count(2, 1) == 1
        assert matrix.count(1, 1) == 1
        assert matrix.count(3, 2) == 0

    def test_totals(self):
        matrix = ODMatrix.from_trips(TRIPS)
        assert matrix.total == 5
        assert matrix.out_totals()[1] == 3
        assert matrix.in_totals()[1] == 3

    def test_filtered(self):
        weekend = ODMatrix.from_trips(
            TRIPS, station_ids=[1, 2, 3], keep=lambda t: t.day_of_week >= 5
        )
        assert weekend.total == 2

    def test_unknown_station_raises(self):
        matrix = ODMatrix.from_trips(TRIPS)
        with pytest.raises(KeyError):
            matrix.count(99, 1)

    def test_top_pairs(self):
        matrix = ODMatrix.from_trips(TRIPS)
        pairs = matrix.top_pairs(k=2)
        assert pairs[0] == (1, 2, 2)

    def test_top_pairs_with_loops(self):
        matrix = ODMatrix.from_trips(TRIPS)
        pairs = matrix.top_pairs(k=10, include_loops=True)
        assert (1, 1, 1) in pairs

    def test_collapse_to_communities(self):
        partition = Partition.from_assignment({1: 0, 2: 0, 3: 1})
        collapsed = ODMatrix.from_trips(TRIPS).collapse(partition)
        assert collapsed.total == 5
        assert collapsed.self_containment() == pytest.approx(4 / 5)

    def test_empty_matrix(self):
        matrix = ODMatrix.from_trips([])
        assert matrix.total == 0
        assert matrix.self_containment() == 0.0


class TestStationProfiles:
    def test_profiles_cover_all_stations(self, small_result):
        profiles = build_profiles(small_result.network)
        assert set(profiles) == set(small_result.network.stations)

    def test_volume_and_balance(self, small_result):
        profiles = build_profiles(small_result.network)
        total_out = sum(p.trips_out for p in profiles.values())
        assert total_out == len(small_result.network.trips)
        for profile in profiles.values():
            assert -1.0 <= profile.balance <= 1.0
            assert sum(profile.hourly) == pytest.approx(1.0, abs=1e-9) or (
                profile.trips_out == 0
            )

    def test_distance_zero_to_self(self, small_result):
        profiles = build_profiles(small_result.network)
        profile = next(iter(profiles.values()))
        assert profile_distance(profile, profile) == 0.0

    def test_outliers_ranked_descending(self, small_result):
        profiles = build_profiles(small_result.network)
        outliers = behavioural_outliers(profiles, top_k=5)
        distances = [distance for _, distance in outliers]
        assert distances == sorted(distances, reverse=True)

    def test_outliers_require_reference(self, small_result):
        profiles = build_profiles(small_result.network)
        with pytest.raises(ValueError):
            behavioural_outliers(profiles, reference_kind="nonexistent")

    def test_mean_profile(self, small_result):
        profiles = build_profiles(small_result.network)
        mean = mean_profile(list(profiles.values()))
        assert len(mean) == 24
        assert mean_profile([]) == tuple(0.0 for _ in range(24))


class TestRebalancing:
    def test_plan_shape(self, small_result):
        plan = plan_weekend_rebalancing(
            small_result.network,
            small_result.day.station_partition,
            fleet_size=40,
        )
        assert plan.demands
        assert all(
            0.0 <= demand.weekend_share <= 1.0 for demand in plan.demands
        )
        # Donors and receivers partition by the uniform share.
        for demand in plan.demands:
            assert demand.is_receiver == (
                demand.weekend_share > UNIFORM_WEEKEND_SHARE
            )

    def test_transfers_directed_donor_to_receiver(self, small_result):
        plan = plan_weekend_rebalancing(
            small_result.network,
            small_result.day.station_partition,
            fleet_size=40,
        )
        receiver_labels = {
            d.community for d in plan.demands if d.is_receiver
        }
        for transfer in plan.transfers:
            assert transfer.to_community in receiver_labels
            assert transfer.from_community not in receiver_labels
            assert transfer.n_bikes >= 1
            assert transfer.pickup_stations
            assert transfer.dropoff_stations

    def test_budget_capped(self, small_result):
        plan = plan_weekend_rebalancing(
            small_result.network,
            small_result.day.station_partition,
            fleet_size=40,
            max_moved_fraction=0.1,
        )
        # Per-transfer rounding can exceed the cap slightly but not
        # wildly.
        assert plan.total_bikes_moved <= 40

    def test_invalid_fleet(self, small_result):
        with pytest.raises(ValueError):
            plan_weekend_rebalancing(
                small_result.network,
                small_result.day.station_partition,
                fleet_size=0,
            )
