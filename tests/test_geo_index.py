"""Unit tests for the grid spatial index."""

import pytest

from repro.exceptions import EmptyRegionError
from repro.geo import GeoPoint, GridIndex, destination_point, haversine_m

CENTER = GeoPoint(53.3473, -6.2591)


def ring_points(n: int, radius_m: float) -> list[GeoPoint]:
    return [
        destination_point(CENTER, 360.0 * i / n, radius_m) for i in range(n)
    ]


class TestInsertRemove:
    def test_len_and_contains(self):
        index: GridIndex[str] = GridIndex()
        index.insert("a", CENTER)
        assert len(index) == 1
        assert "a" in index
        assert "b" not in index

    def test_position_roundtrip(self):
        index: GridIndex[str] = GridIndex()
        index.insert("a", CENTER)
        assert index.position("a") == CENTER

    def test_reinsert_moves(self):
        index: GridIndex[str] = GridIndex()
        index.insert("a", CENTER)
        moved = destination_point(CENTER, 0.0, 5_000.0)
        index.insert("a", moved)
        assert len(index) == 1
        assert index.position("a") == moved
        assert index.within(CENTER, 100.0) == []

    def test_remove(self):
        index: GridIndex[str] = GridIndex()
        index.insert("a", CENTER)
        index.remove("a")
        assert len(index) == 0

    def test_remove_missing_raises(self):
        index: GridIndex[str] = GridIndex()
        with pytest.raises(KeyError):
            index.remove("ghost")

    def test_extend(self):
        index: GridIndex[int] = GridIndex()
        index.extend((i, point) for i, point in enumerate(ring_points(5, 100.0)))
        assert len(index) == 5

    def test_iteration(self):
        index: GridIndex[int] = GridIndex()
        index.insert(1, CENTER)
        index.insert(2, destination_point(CENTER, 0.0, 100.0))
        assert sorted(index) == [1, 2]


class TestWithin:
    def test_radius_filter_exact(self):
        index: GridIndex[int] = GridIndex(cell_m=100.0)
        near = destination_point(CENTER, 10.0, 80.0)
        far = destination_point(CENTER, 10.0, 120.0)
        index.insert(1, near)
        index.insert(2, far)
        hits = index.within(CENTER, 100.0)
        assert [key for key, _ in hits] == [1]

    def test_sorted_by_distance(self):
        index: GridIndex[int] = GridIndex()
        for i, radius in enumerate([90.0, 30.0, 60.0]):
            index.insert(i, destination_point(CENTER, 45.0, radius))
        hits = index.within(CENTER, 200.0)
        assert [key for key, _ in hits] == [1, 2, 0]

    def test_distances_are_haversine(self):
        index: GridIndex[int] = GridIndex()
        point = destination_point(CENTER, 200.0, 55.0)
        index.insert(7, point)
        [(key, distance)] = index.within(CENTER, 100.0)
        assert distance == pytest.approx(haversine_m(CENTER, point))

    def test_zero_radius(self):
        index: GridIndex[int] = GridIndex()
        index.insert(1, CENTER)
        hits = index.within(CENTER, 0.0)
        assert [key for key, _ in hits] == [1]

    def test_negative_radius_raises(self):
        index: GridIndex[int] = GridIndex()
        with pytest.raises(ValueError):
            index.within(CENTER, -1.0)

    def test_large_radius_spanning_many_cells(self):
        index: GridIndex[int] = GridIndex(cell_m=50.0)
        points = ring_points(24, 900.0)
        index.extend(enumerate(points))
        hits = index.within(CENTER, 1_000.0)
        assert len(hits) == 24


class TestNearest:
    def test_matches_brute_force(self):
        index: GridIndex[int] = GridIndex(cell_m=100.0)
        points = ring_points(40, 500.0) + ring_points(15, 3_000.0)
        index.extend(enumerate(points))
        query = destination_point(CENTER, 123.0, 777.0)
        key, distance = index.nearest(query)
        brute = min(
            range(len(points)), key=lambda i: haversine_m(query, points[i])
        )
        assert key == brute
        assert distance == pytest.approx(haversine_m(query, points[brute]))

    def test_exclude_self(self):
        index: GridIndex[str] = GridIndex()
        index.insert("me", CENTER)
        index.insert("other", destination_point(CENTER, 0.0, 300.0))
        key, _ = index.nearest(CENTER, exclude="me")
        assert key == "other"

    def test_empty_raises(self):
        index: GridIndex[int] = GridIndex()
        with pytest.raises(EmptyRegionError):
            index.nearest(CENTER)

    def test_only_excluded_raises(self):
        index: GridIndex[str] = GridIndex()
        index.insert("me", CENTER)
        with pytest.raises(EmptyRegionError):
            index.nearest(CENTER, exclude="me")

    def test_distant_single_point_found(self):
        index: GridIndex[str] = GridIndex(cell_m=50.0)
        far = destination_point(CENTER, 60.0, 20_000.0)
        index.insert("far", far)
        key, distance = index.nearest(CENTER)
        assert key == "far"
        assert distance == pytest.approx(haversine_m(CENTER, far))
