"""Tests for the pipeline orchestrator and post-hoc validation."""

import pytest

from repro import NetworkExpansionOptimiser, PipelineConfig, validate_expansion
from repro.config import SelectionConfig


class TestOptimiserStages:
    def test_stages_cached(self, small_raw):
        optimiser = NetworkExpansionOptimiser(small_raw)
        first = optimiser.condense()
        second = optimiser.condense()
        assert first is second
        assert optimiser.select() is optimiser.select()
        assert optimiser.build_network() is optimiser.build_network()

    def test_clean_preserves_raw(self, small_raw):
        before = small_raw.n_rentals
        NetworkExpansionOptimiser(small_raw).clean()
        assert small_raw.n_rentals == before

    def test_run_bundles_everything(self, small_result):
        assert small_result.cleaned.n_rentals > 0
        assert small_result.candidates.n_candidates > 0
        assert small_result.n_new_stations > 0
        assert small_result.n_total_stations == len(
            small_result.network.stations
        )

    def test_custom_config_threading(self, small_raw):
        config = PipelineConfig(
            selection=SelectionConfig(degree_threshold=10_000)
        )
        optimiser = NetworkExpansionOptimiser(small_raw, config)
        assert optimiser.select().n_selected == 0

    def test_community_stages(self, small_result):
        assert small_result.basic.n_communities >= 2
        assert small_result.day.n_slices == 7
        assert small_result.hour.n_slices == 24

    def test_all_stations_partitioned_basic(self, small_result):
        partition = small_result.basic.partition
        for station_id in small_result.network.stations:
            assert station_id in partition


class TestValidation:
    def test_small_run_passes(self, small_result):
        report = validate_expansion(small_result)
        assert report.all_passed, report.failures()

    def test_report_details_populated(self, small_result):
        report = validate_expansion(small_result)
        assert set(report.checks) == set(report.details)
        assert "rule1_cluster_boundary" in report.checks
        assert "rule4_secondary_distance" in report.checks
        assert "modularity_positive" in report.checks

    def test_failures_list(self, small_result):
        report = validate_expansion(small_result)
        report.record("synthetic_failure", False, "injected")
        assert not report.all_passed
        assert report.failures() == ["synthetic_failure"]
