"""Tests for the six-rule cleaning pipeline."""

from datetime import datetime

import pytest

from repro.data import (
    LocationRecord,
    MobyDataset,
    RentalRecord,
    RULE_DANGLING_LOCATION_ID,
    RULE_MISSING_COORDINATES,
    RULE_MISSING_LOCATION_ID,
    RULE_NOT_ON_LAND,
    RULE_OUTSIDE_DUBLIN,
    RULE_UNREFERENCED_LOCATION,
    clean_dataset,
)

GOOD_A = LocationRecord(1, 53.3473, -6.2591, is_station=True, name="A")
GOOD_B = LocationRecord(2, 53.3400, -6.2500)
OUTSIDE = LocationRecord(3, 53.52, -6.30)
IN_BAY = LocationRecord(4, 53.344, -6.10)
NO_COORDS = LocationRecord(5, None, None)
UNREFERENCED = LocationRecord(6, 53.3450, -6.2550)


def rental(rental_id: int, origin, destination) -> RentalRecord:
    start = datetime(2020, 6, 1, 9, 0)
    return RentalRecord(
        rental_id=rental_id,
        bike_id=1,
        started_at=start,
        ended_at=datetime(2020, 6, 1, 9, 30),
        rental_location_id=origin,
        return_location_id=destination,
    )


def build_dirty() -> MobyDataset:
    return MobyDataset.from_records(
        [GOOD_A, GOOD_B, OUTSIDE, IN_BAY, NO_COORDS, UNREFERENCED],
        [
            rental(1, 1, 2),          # clean
            rental(2, 2, 1),          # clean
            rental(3, 1, 3),          # touches outside-Dublin location
            rental(4, 4, 1),          # touches bay location
            rental(5, 5, 2),          # touches coordinate-less location
            rental(6, None, 1),       # missing origin id
            rental(7, 1, None),       # missing return id
            rental(8, 999, 1),        # dangling origin id
        ],
    )


class TestCleaningRules:
    @pytest.fixture
    def cleaned(self):
        return clean_dataset(build_dirty())

    def test_surviving_rentals(self, cleaned):
        dataset, _ = cleaned
        assert sorted(r.rental_id for r in dataset.rentals()) == [1, 2]

    def test_surviving_locations(self, cleaned):
        dataset, _ = cleaned
        assert sorted(l.location_id for l in dataset.locations()) == [1, 2]

    def test_rule_outside_dublin(self, cleaned):
        _, report = cleaned
        outcome = report.outcome(RULE_OUTSIDE_DUBLIN)
        assert outcome.locations_removed == 1
        assert outcome.rentals_removed == 1

    def test_rule_not_on_land(self, cleaned):
        _, report = cleaned
        outcome = report.outcome(RULE_NOT_ON_LAND)
        assert outcome.locations_removed == 1
        assert outcome.rentals_removed == 1

    def test_rule_missing_coordinates(self, cleaned):
        _, report = cleaned
        outcome = report.outcome(RULE_MISSING_COORDINATES)
        assert outcome.locations_removed == 1
        assert outcome.rentals_removed == 1

    def test_rule_missing_location_id(self, cleaned):
        _, report = cleaned
        assert report.outcome(RULE_MISSING_LOCATION_ID).rentals_removed == 2

    def test_rule_dangling_location_id(self, cleaned):
        _, report = cleaned
        assert report.outcome(RULE_DANGLING_LOCATION_ID).rentals_removed == 1

    def test_rule_unreferenced(self, cleaned):
        _, report = cleaned
        # Location 6 was never referenced at all.
        assert report.outcome(RULE_UNREFERENCED_LOCATION).locations_removed == 1

    def test_totals(self, cleaned):
        _, report = cleaned
        assert report.total_locations_removed == 4
        assert report.total_rentals_removed == 6
        assert report.before.n_rentals == 8
        assert report.after.n_rentals == 2

    def test_input_untouched(self):
        raw = build_dirty()
        clean_dataset(raw)
        assert raw.n_rentals == 8
        assert raw.n_locations == 6

    def test_result_passes_integrity(self, cleaned):
        dataset, _ = cleaned
        dataset.db.check_integrity()

    def test_unknown_rule_lookup_raises(self, cleaned):
        _, report = cleaned
        with pytest.raises(KeyError):
            report.outcome("no_such_rule")


class TestCleaningEdgeCases:
    def test_clean_dataset_is_noop_on_clean_data(self):
        dataset = MobyDataset.from_records(
            [GOOD_A, GOOD_B], [rental(1, 1, 2)]
        )
        cleaned, report = clean_dataset(dataset)
        assert cleaned.n_rentals == 1
        assert cleaned.n_locations == 2
        assert report.total_rentals_removed == 0

    def test_cascade_unreferenced_after_rental_removal(self):
        # GOOD_B is only referenced by a rental that dies with OUTSIDE,
        # so rule 6 must then remove GOOD_B as well.
        dataset = MobyDataset.from_records(
            [GOOD_A, GOOD_B, OUTSIDE],
            [rental(1, 2, 3), rental(2, 1, 1)],
        )
        cleaned, report = clean_dataset(dataset)
        assert sorted(l.location_id for l in cleaned.locations()) == [1]
        assert report.outcome(RULE_UNREFERENCED_LOCATION).locations_removed == 1

    def test_station_can_be_cleaned(self):
        bad_station = LocationRecord(9, 53.52, -6.30, is_station=True)
        dataset = MobyDataset.from_records(
            [GOOD_A, GOOD_B, bad_station], [rental(1, 1, 2)]
        )
        cleaned, _ = clean_dataset(dataset)
        assert cleaned.n_stations == 1

    def test_paper_scale_counts(self, small_raw):
        cleaned, report = clean_dataset(small_raw)
        assert report.before.n_rentals > report.after.n_rentals
        assert report.before.n_locations > report.after.n_locations
        assert report.before.n_stations - report.after.n_stations == 3
        cleaned.db.check_integrity()
