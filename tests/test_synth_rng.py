"""Tests for the deterministic RNG helpers."""

import math

import pytest

from repro.geo import GeoPoint, haversine_m
from repro.synth import Rng

CENTER = GeoPoint(53.3473, -6.2591)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = Rng(5), Rng(5)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        assert Rng(1).random() != Rng(2).random()

    def test_fork_is_stable_across_instances(self):
        a = Rng(7).fork("trips")
        b = Rng(7).fork("trips")
        assert a.random() == b.random()

    def test_fork_labels_independent(self):
        root = Rng(7)
        assert root.fork("a").random() != root.fork("b").random()

    def test_fork_does_not_consume_parent(self):
        root = Rng(7)
        before = Rng(7).random()
        root.fork("x")
        assert root.random() == before


class TestDistributions:
    def test_poisson_mean_small_lambda(self):
        rng = Rng(3)
        draws = [rng.poisson(4.0) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(4.0, rel=0.05)

    def test_poisson_mean_large_lambda(self):
        rng = Rng(3)
        draws = [rng.poisson(200.0) for _ in range(1000)]
        assert sum(draws) / len(draws) == pytest.approx(200.0, rel=0.02)

    def test_poisson_zero(self):
        assert Rng(1).poisson(0.0) == 0

    def test_poisson_negative_rejected(self):
        with pytest.raises(ValueError):
            Rng(1).poisson(-1.0)

    def test_weighted_key_distribution(self):
        rng = Rng(9)
        weights = {"a": 1.0, "b": 3.0}
        draws = [rng.weighted_key(weights) for _ in range(4000)]
        share_b = draws.count("b") / len(draws)
        assert share_b == pytest.approx(0.75, abs=0.03)

    def test_weighted_key_zero_total_rejected(self):
        with pytest.raises(ValueError):
            Rng(1).weighted_key({"a": 0.0})

    def test_weighted_index(self):
        rng = Rng(4)
        draws = [rng.weighted_index([0.0, 1.0, 0.0]) for _ in range(100)]
        assert set(draws) == {1}

    def test_weighted_index_empty_rejected(self):
        with pytest.raises(ValueError):
            Rng(1).weighted_index([])


class TestGeography:
    def test_jitter_point_scale(self):
        rng = Rng(11)
        distances = [
            haversine_m(CENTER, rng.jitter_point(CENTER, 20.0))
            for _ in range(500)
        ]
        mean = sum(distances) / len(distances)
        # Rayleigh mean for sigma=20 is 20 * sqrt(pi/2) ~= 25.
        assert mean == pytest.approx(20.0 * math.sqrt(math.pi / 2.0), rel=0.1)

    def test_point_in_disc_radius_bound(self):
        rng = Rng(12)
        for _ in range(300):
            point = rng.point_in_disc(CENTER, 400.0)
            assert haversine_m(CENTER, point) <= 401.0

    def test_point_in_disc_spread(self):
        rng = Rng(13)
        inside_half = sum(
            haversine_m(CENTER, rng.point_in_disc(CENTER, 100.0)) <= 50.0
            for _ in range(2000)
        )
        # Uniform disc: a quarter of points land within half the radius.
        assert inside_half / 2000 == pytest.approx(0.25, abs=0.04)
