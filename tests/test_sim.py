"""Tests for the fleet simulator."""

from datetime import datetime, timedelta

import pytest

from repro.geo import GeoPoint, destination_point
from repro.sim import (
    FleetSimulator,
    TripRequest,
    compare_networks,
    requests_from_rentals,
)

CENTER = GeoPoint(53.3473, -6.2591)
FAR = destination_point(CENTER, 90.0, 2_000.0)
NEAR = destination_point(CENTER, 0.0, 200.0)

STATIONS = {1: CENTER, 2: FAR, 3: NEAR}


def request(minute: int, origin: int, destination: int, duration: float = 10.0):
    return TripRequest(
        requested_at=datetime(2020, 6, 1, 9, 0) + timedelta(minutes=minute),
        origin=origin,
        destination=destination,
        duration_minutes=duration,
    )


class TestInitialBikes:
    def test_round_robin(self):
        sim = FleetSimulator(STATIONS, n_bikes=7)
        bikes = sim.initial_bikes()
        assert sum(bikes.values()) == 7
        assert max(bikes.values()) - min(bikes.values()) <= 1

    def test_weighted(self):
        sim = FleetSimulator(STATIONS, n_bikes=10)
        bikes = sim.initial_bikes({1: 8.0, 2: 1.0, 3: 1.0})
        assert sum(bikes.values()) == 10
        assert bikes[1] == 8

    def test_weighted_handles_missing_station_weight(self):
        sim = FleetSimulator(STATIONS, n_bikes=6)
        bikes = sim.initial_bikes({1: 1.0})
        assert sum(bikes.values()) == 6
        assert bikes[1] == 6


class TestServing:
    def test_direct_service(self):
        sim = FleetSimulator(STATIONS, n_bikes=3)
        result = sim.run([request(0, 1, 2)], {1: 1, 2: 1, 3: 1})
        assert result.served_direct == 1
        assert result.unserved == 0

    def test_stockout_unserved(self):
        sim = FleetSimulator(STATIONS, n_bikes=1, walk_radius_m=50.0)
        result = sim.run(
            [request(0, 1, 2), request(1, 1, 2)], {1: 1, 2: 0, 3: 0}
        )
        assert result.served == 1
        assert result.unserved == 1
        assert result.stockout_minutes[1] > 0

    def test_walk_service_within_radius(self):
        # Station 3 is 200 m from station 1; walk radius 300 m.
        sim = FleetSimulator(STATIONS, n_bikes=1, walk_radius_m=300.0)
        result = sim.run([request(0, 1, 2)], {1: 0, 2: 0, 3: 1})
        assert result.served_walk == 1
        assert result.walk_rate == 1.0

    def test_no_walk_beyond_radius(self):
        # Only station 2 (2 km away) has a bike.
        sim = FleetSimulator(STATIONS, n_bikes=1, walk_radius_m=300.0)
        result = sim.run([request(0, 1, 2)], {1: 0, 2: 1, 3: 0})
        assert result.unserved == 1

    def test_bike_lands_at_destination(self):
        sim = FleetSimulator(STATIONS, n_bikes=1, walk_radius_m=10.0)
        requests = [
            request(0, 1, 2, duration=5.0),
            request(30, 2, 1, duration=5.0),  # uses the landed bike
        ]
        result = sim.run(requests, {1: 1, 2: 0, 3: 0})
        assert result.served == 2

    def test_bike_not_available_before_arrival(self):
        sim = FleetSimulator(STATIONS, n_bikes=1, walk_radius_m=10.0)
        requests = [
            request(0, 1, 2, duration=60.0),
            request(5, 2, 1, duration=5.0),  # bike still in flight
        ]
        result = sim.run(requests, {1: 1, 2: 0, 3: 0})
        assert result.served == 1
        assert result.unserved == 1

    def test_service_rate(self):
        sim = FleetSimulator(STATIONS, n_bikes=1, walk_radius_m=10.0)
        result = sim.run(
            [request(i, 1, 2, duration=300.0) for i in range(4)],
            {1: 1, 2: 0, 3: 0},
        )
        assert result.service_rate == pytest.approx(0.25)

    def test_empty_requests(self):
        sim = FleetSimulator(STATIONS, n_bikes=2)
        result = sim.run([])
        assert result.n_requests == 0
        assert result.service_rate == 1.0

    def test_unknown_station_in_bikes_rejected(self):
        sim = FleetSimulator(STATIONS, n_bikes=1)
        with pytest.raises(ValueError):
            sim.run([], {99: 1})


class TestRebalancing:
    def test_nightly_hook_runs_once_per_day(self):
        calls = []

        def hook(now, bikes):
            calls.append(now.date())
            return [(2, 1, 1)]

        sim = FleetSimulator(
            STATIONS, n_bikes=1, walk_radius_m=10.0, rebalancing=hook
        )
        requests = [
            request(0, 1, 2, duration=5.0),
            request(10, 1, 2, duration=5.0),
            TripRequest(datetime(2020, 6, 2, 9, 0), 1, 2, 5.0),
        ]
        result = sim.run(requests, {1: 0, 2: 1, 3: 0})
        assert len(calls) == 2  # once per simulated day
        assert result.bikes_moved_by_rebalancing >= 1
        # The moved bike makes the first request servable.
        assert result.served >= 1

    def test_hook_cannot_move_more_than_available(self):
        def hook(now, bikes):
            return [(2, 1, 100)]

        sim = FleetSimulator(
            STATIONS, n_bikes=1, walk_radius_m=10.0, rebalancing=hook
        )
        result = sim.run([request(0, 1, 2)], {1: 0, 2: 1, 3: 0})
        assert result.bikes_moved_by_rebalancing == 1


class TestValidation:
    def test_requires_station(self):
        with pytest.raises(ValueError):
            FleetSimulator({}, n_bikes=1)

    def test_requires_bikes(self):
        with pytest.raises(ValueError):
            FleetSimulator(STATIONS, n_bikes=0)


class TestIntegration:
    def test_requests_from_rentals(self, small_result):
        requests = requests_from_rentals(
            small_result.cleaned.rentals(),
            small_result.network.location_to_station,
        )
        assert len(requests) == small_result.cleaned.n_rentals
        times = [r.requested_at for r in requests]
        assert times == sorted(times)

    def test_compare_networks_expansion_helps(self, small_result):
        comparisons = compare_networks(
            small_result, n_bikes=40, walk_radius_m=250.0
        )
        by_name = {c.name: c for c in comparisons}
        assert set(by_name) == {"original", "expanded"}
        assert by_name["expanded"].n_stations > by_name["original"].n_stations
        # Every request is accounted for in both runs.
        for comparison in comparisons:
            outcome = comparison.result
            assert outcome.served + outcome.unserved == outcome.n_requests
