"""Unit tests for repro.geo.point."""

import math

import pytest

from repro.exceptions import EmptyRegionError, InvalidCoordinateError
from repro.geo import BoundingBox, GeoPoint, centroid, validate_coordinates


class TestValidateCoordinates:
    def test_accepts_valid(self):
        validate_coordinates(53.35, -6.26)

    def test_accepts_extremes(self):
        validate_coordinates(90.0, 180.0)
        validate_coordinates(-90.0, -180.0)

    @pytest.mark.parametrize("lat,lon", [(91, 0), (-91, 0), (0, 181), (0, -181)])
    def test_rejects_out_of_range(self, lat, lon):
        with pytest.raises(InvalidCoordinateError):
            validate_coordinates(lat, lon)

    @pytest.mark.parametrize(
        "lat,lon", [(float("nan"), 0), (0, float("nan")), (float("inf"), 0)]
    )
    def test_rejects_non_finite(self, lat, lon):
        with pytest.raises(InvalidCoordinateError):
            validate_coordinates(lat, lon)


class TestGeoPoint:
    def test_construction_and_fields(self):
        point = GeoPoint(53.3473, -6.2591)
        assert point.lat == 53.3473
        assert point.lon == -6.2591

    def test_invalid_raises(self):
        with pytest.raises(InvalidCoordinateError):
            GeoPoint(123.0, 0.0)

    def test_as_tuple(self):
        assert GeoPoint(1.0, 2.0).as_tuple() == (1.0, 2.0)

    def test_iterable_unpacking(self):
        lat, lon = GeoPoint(10.0, 20.0)
        assert (lat, lon) == (10.0, 20.0)

    def test_equality_and_hash(self):
        assert GeoPoint(1.0, 2.0) == GeoPoint(1.0, 2.0)
        assert hash(GeoPoint(1.0, 2.0)) == hash(GeoPoint(1.0, 2.0))
        assert GeoPoint(1.0, 2.0) != GeoPoint(2.0, 1.0)

    def test_ordering(self):
        assert GeoPoint(1.0, 2.0) < GeoPoint(2.0, 0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            GeoPoint(1.0, 2.0).lat = 3.0  # type: ignore[misc]


class TestBoundingBox:
    def test_contains_inside(self):
        box = BoundingBox(53.2, -6.5, 53.5, -6.0)
        assert box.contains(GeoPoint(53.35, -6.26))

    def test_contains_boundary_inclusive(self):
        box = BoundingBox(53.2, -6.5, 53.5, -6.0)
        assert box.contains(GeoPoint(53.2, -6.5))
        assert box.contains(GeoPoint(53.5, -6.0))

    def test_excludes_outside(self):
        box = BoundingBox(53.2, -6.5, 53.5, -6.0)
        assert not box.contains(GeoPoint(53.6, -6.26))
        assert not box.contains(GeoPoint(53.35, -5.9))

    def test_invalid_orientation_raises(self):
        with pytest.raises(InvalidCoordinateError):
            BoundingBox(53.5, -6.5, 53.2, -6.0)
        with pytest.raises(InvalidCoordinateError):
            BoundingBox(53.2, -6.0, 53.5, -6.5)

    def test_around_points(self):
        box = BoundingBox.around(
            [GeoPoint(1.0, 2.0), GeoPoint(-1.0, 5.0), GeoPoint(0.5, 3.0)]
        )
        assert box.south == -1.0
        assert box.north == 1.0
        assert box.west == 2.0
        assert box.east == 5.0

    def test_around_empty_raises(self):
        with pytest.raises(EmptyRegionError):
            BoundingBox.around([])

    def test_expand(self):
        box = BoundingBox(53.2, -6.5, 53.5, -6.0).expand(0.1)
        assert box.south == pytest.approx(53.1)
        assert box.east == pytest.approx(-5.9)

    def test_expand_clamps_at_poles(self):
        box = BoundingBox(89.5, 0.0, 90.0, 1.0).expand(1.0)
        assert box.north == 90.0

    def test_center(self):
        box = BoundingBox(0.0, 0.0, 10.0, 20.0)
        assert box.center == GeoPoint(5.0, 10.0)

    def test_spans(self):
        box = BoundingBox(0.0, 0.0, 10.0, 20.0)
        assert box.height_deg == 10.0
        assert box.width_deg == 20.0


class TestCentroid:
    def test_single_point(self):
        assert centroid([GeoPoint(3.0, 4.0)]) == GeoPoint(3.0, 4.0)

    def test_mean_of_points(self):
        result = centroid([GeoPoint(0.0, 0.0), GeoPoint(2.0, 4.0)])
        assert result == GeoPoint(1.0, 2.0)

    def test_empty_raises(self):
        with pytest.raises(EmptyRegionError):
            centroid([])

    def test_accepts_generator(self):
        result = centroid(GeoPoint(float(i), 0.0) for i in range(5))
        assert math.isclose(result.lat, 2.0)
