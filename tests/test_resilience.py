"""repro.resilience: retry/backoff, fault injection, breaker, watchdog.

The property tests here pin the *bounds* of the resilience layer — the
numbers docs/RESILIENCE.md promises — rather than exact schedules:
total backoff sleep never exceeds ``max_total_delay_s()``, every
full-jitter draw stays inside its window, and store-layer verdicts
(:class:`StoreQuotaError`, :class:`StoreKeyError`) are never retried.
"""

import errno
import random
import threading
import time

import pytest

from repro.exceptions import StoreKeyError, StoreQuotaError
from repro.resilience import (
    BREAKER_STATES,
    CircuitBreaker,
    DEFAULT_RETRY_POLICY,
    FaultConfig,
    FaultInjectingBackend,
    RetryPolicy,
    Watchdog,
    is_transient,
)
from repro.store import MemoryBackend, Namespace


def policy(seed, **kwargs):
    """A non-sleeping policy that records its sleeps."""
    sleeps = []
    defaults = dict(
        max_attempts=6,
        base_delay_s=0.025,
        max_delay_s=0.5,
        sleep=sleeps.append,
        rng=random.Random(seed),
    )
    defaults.update(kwargs)
    return RetryPolicy(**defaults), sleeps


class TestClassification:
    @pytest.mark.parametrize(
        "code",
        [errno.EIO, errno.EINTR, errno.EAGAIN, errno.EBUSY, errno.ETIMEDOUT],
    )
    def test_transient_errnos(self, code):
        assert is_transient(OSError(code, "flap")) is True

    @pytest.mark.parametrize(
        "code", [errno.ENOSPC, errno.EROFS, errno.EACCES, errno.ENOENT]
    )
    def test_permanent_errnos(self, code):
        assert is_transient(OSError(code, "state")) is False

    def test_store_verdicts_never_transient(self):
        # StoreQuotaError/StoreKeyError are decisions, not faults —
        # even though StoreError subclasses OSError-free hierarchies.
        assert is_transient(StoreQuotaError("over quota")) is False
        assert is_transient(StoreKeyError("bad key")) is False
        assert is_transient(ValueError("nope")) is False


class TestBackoffProperties:
    @pytest.mark.parametrize("seed", range(20))
    def test_total_sleep_bounded(self, seed):
        pol, sleeps = policy(seed)
        with pytest.raises(OSError):
            pol.call(lambda: (_ for _ in ()).throw(OSError(errno.EIO, "x")))
        assert len(sleeps) == pol.max_attempts - 1
        assert sum(sleeps) <= pol.max_total_delay_s() + 1e-12

    @pytest.mark.parametrize("seed", range(20))
    def test_full_jitter_within_window(self, seed):
        pol, sleeps = policy(seed)
        with pytest.raises(OSError):
            pol.call(lambda: (_ for _ in ()).throw(OSError(errno.EIO, "x")))
        for index, delay in enumerate(sleeps):
            assert 0.0 <= delay <= pol.delay_cap_s(index)

    def test_delay_caps_double_then_saturate(self):
        pol, _ = policy(0)
        caps = [pol.delay_cap_s(i) for i in range(pol.max_attempts - 1)]
        assert caps == [0.025, 0.05, 0.1, 0.2, 0.4]
        assert pol.delay_cap_s(10) == pol.max_delay_s
        assert pol.max_total_delay_s() == pytest.approx(0.775)

    def test_default_policy_budget(self):
        # The number RESILIENCE.md quotes: worst-case added latency.
        assert DEFAULT_RETRY_POLICY.max_attempts == 6
        assert DEFAULT_RETRY_POLICY.max_total_delay_s() == pytest.approx(0.775)

    def test_no_retry_on_store_verdicts(self):
        for error in (StoreQuotaError("over"), StoreKeyError("bad")):
            pol, sleeps = policy(1)
            calls = []

            def fn():
                calls.append(1)
                raise error

            with pytest.raises(type(error)):
                pol.call(fn)
            assert len(calls) == 1  # first and only attempt
            assert sleeps == []

    def test_transient_recovers_midway(self):
        pol, sleeps = policy(2)
        attempts = []

        def fn():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError(errno.EIO, "flap")
            return "ok"

        retries = []
        assert pol.call(fn, on_retry=lambda e, i: retries.append(i)) == "ok"
        assert len(attempts) == 3
        assert retries == [0, 1]
        assert len(sleeps) == 2

    def test_single_attempt_policy_never_sleeps(self):
        pol, sleeps = policy(3, max_attempts=1)
        with pytest.raises(OSError):
            pol.call(lambda: (_ for _ in ()).throw(OSError(errno.EIO, "x")))
        assert sleeps == []


class TestFaultInjection:
    def test_schedule_is_deterministic(self):
        def faults_for(seed):
            backend = FaultInjectingBackend(
                MemoryBackend(), FaultConfig(seed=seed, failure_rate=0.3)
            )
            outcomes = []
            for n in range(50):
                try:
                    backend.put(f"k{n % 5}.bin", b"v")
                    outcomes.append("ok")
                except OSError:
                    outcomes.append("fault")
            return outcomes

        assert faults_for(7) == faults_for(7)
        assert faults_for(7) != faults_for(8)

    def test_retry_is_a_new_draw(self):
        # failure_rate < 1 means a retried op eventually converges:
        # each call of the same (op, key) advances the call counter.
        backend = FaultInjectingBackend(
            MemoryBackend(), FaultConfig(seed=0, failure_rate=0.9)
        )
        for _ in range(200):
            try:
                backend.put("k.bin", b"v")
                break
            except OSError:
                continue
        else:
            pytest.fail("a 0.9 fault rate never converged in 200 draws")
        assert backend.inner.get("k.bin") == b"v"

    def test_enospc_is_not_transient(self):
        backend = FaultInjectingBackend(
            MemoryBackend(), FaultConfig(seed=0, enospc_rate=1.0)
        )
        with pytest.raises(OSError) as excinfo:
            backend.put("k.bin", b"v")
        assert excinfo.value.errno == errno.ENOSPC
        assert is_transient(excinfo.value) is False

    def test_bookkeeping_ops_pass_through(self):
        backend = FaultInjectingBackend(
            MemoryBackend(), FaultConfig(seed=0, failure_rate=1.0)
        )
        backend.inner.put("k.bin", b"v")
        assert sorted(backend.list()) == ["k.bin"]
        assert backend.stat("k.bin").size == 1
        backend.touch("k.bin")
        assert backend.delete("k.bin") is True

    def test_from_env_inactive_without_variables(self):
        assert FaultConfig.from_env({}) is None
        config = FaultConfig.from_env({"REPRO_FAULT_RATE": "0.25"})
        assert config.failure_rate == 0.25
        assert config.active is True
        assert FaultConfig(seed=3).active is False

    def test_namespace_retries_through_faults(self):
        # The full seam: Namespace + retry policy over a faulted
        # backend — every roundtrip succeeds, retries are counted.
        backend = FaultInjectingBackend(
            MemoryBackend(), FaultConfig(seed=0, failure_rate=0.15)
        )
        pol = RetryPolicy(sleep=lambda _s: None, rng=random.Random(0))
        namespace = Namespace(backend, suffix=".bin", retry=pol)
        for n in range(200):
            key = f"{n:040x}"
            namespace.put(key, b"payload-%d" % n)
            assert namespace.get(key) == b"payload-%d" % n
        assert namespace.retries > 0
        assert namespace.stats()["retries"] == namespace.retries

    def test_namespace_never_retries_quota_verdicts(self):
        namespace = Namespace(
            MemoryBackend(), suffix=".bin", max_entry_bytes=4,
            reject_oversize=True,
        )
        calls = []
        original = namespace.backend.put

        def counting_put(key, data):
            calls.append(key)
            return original(key, data)

        namespace.backend.put = counting_put
        with pytest.raises(StoreQuotaError):
            namespace.put("a" * 40, b"way past the entry byte bound")
        assert calls == []  # rejected before any backend attempt


class TestCircuitBreaker:
    def test_state_machine(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout_s=10.0, clock=lambda: clock[0]
        )
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # success reset the streak
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow() is False
        assert breaker.retry_after_s() == pytest.approx(10.0)
        clock[0] = 10.5
        assert breaker.allow() is True  # this caller is the probe
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        assert breaker.state == "open"
        clock[0] = 6.0
        assert breaker.allow() is True
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        assert breaker.snapshot()["trips"] == 2
        clock[0] = 6.5
        assert breaker.allow() is False  # timeout restarted

    def test_manual_trip_and_reset(self):
        breaker = CircuitBreaker()
        breaker.trip()
        assert breaker.state == "open"
        assert breaker.allow() is False
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.allow() is True

    def test_snapshot_states_cover_gauge_encoding(self):
        assert BREAKER_STATES == ("closed", "half_open", "open")
        breaker = CircuitBreaker()
        assert breaker.snapshot()["state"] in BREAKER_STATES


class TestWatchdog:
    def test_scans_periodically_and_stops(self):
        scans = threading.Event()
        counter = []

        def scan():
            counter.append(1)
            scans.set()

        watchdog = Watchdog(scan, interval_s=0.01).start()
        assert scans.wait(2.0)
        assert watchdog.running is True
        watchdog.stop()
        assert watchdog.running is False
        settled = len(counter)
        time.sleep(0.05)
        assert len(counter) == settled  # no scans after stop

    def test_scan_exceptions_are_contained(self):
        def scan():
            raise RuntimeError("bad scan")

        watchdog = Watchdog(scan, interval_s=0.01).start()
        deadline = time.monotonic() + 2.0
        while watchdog.scan_errors < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        watchdog.stop()
        assert watchdog.scan_errors >= 2  # survived its own failures

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            Watchdog(lambda: None, interval_s=0.0)
