"""Golden regression suite: the paper's headline numbers, pinned.

The seeded paper dataset (seed 7) is fully deterministic, so the
numbers behind Tables II-VI — candidate-graph counts, the selection
outcome, and the modularity/community structure at each temporal
granularity — are pinned bit-for-bit in ``tests/goldens/paper_seed7.json``.
Any refactor of the pipeline must leave them untouched; a deliberate
behaviour change regenerates the fixture with::

    pytest tests/test_golden_paper.py --update-goldens

Both execution paths are pinned to the same goldens: the legacy
``NetworkExpansionOptimiser.run()`` facade (serial) and a direct
``PipelineRunner`` run with ``jobs=2`` — so the suite simultaneously
locks the refactor and proves parallel output equals serial output.
"""

import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

GOLDEN_PATH = Path(__file__).parent / "goldens" / "paper_seed7.json"

#: Modularity is pinned to this many decimals (the pipeline is
#: deterministic; rounding only guards against pickle/json float noise).
MODULARITY_DECIMALS = 9


def collect_goldens(result) -> dict:
    """The headline numbers of Tables I-VI for one pipeline result."""
    candidate_stats = result.candidates.stats()
    network_stats = result.network.stats()
    return {
        "table1_dataset": {
            "original_stations": result.cleaning_report.before.n_stations,
            "original_rentals": result.cleaning_report.before.n_rentals,
            "original_locations": result.cleaning_report.before.n_locations,
            "cleaned_stations": result.cleaning_report.after.n_stations,
            "cleaned_rentals": result.cleaning_report.after.n_rentals,
            "cleaned_locations": result.cleaning_report.after.n_locations,
        },
        "table2_candidates": {
            "nodes": candidate_stats.n_nodes,
            "undirected_edges": candidate_stats.n_undirected_edges,
            "undirected_edges_no_loops": candidate_stats.n_undirected_edges_no_loops,
            "directed_edges": candidate_stats.n_directed_edges,
            "directed_edges_no_loops": candidate_stats.n_directed_edges_no_loops,
            "trips": candidate_stats.n_trips,
        },
        "table3_selected": {
            "n_fixed": network_stats.n_fixed,
            "n_selected": network_stats.n_selected,
            "n_trips": network_stats.n_trips,
            "n_directed_edges": network_stats.n_directed_edges,
        },
        "table4_gbasic": {
            "n_communities": result.basic.n_communities,
            "modularity": round(result.basic.modularity, MODULARITY_DECIMALS),
        },
        "table5_gday": {
            "n_communities": result.day.n_communities,
            "n_slices": result.day.n_slices,
            "modularity": round(result.day.modularity, MODULARITY_DECIMALS),
        },
        "table6_ghour": {
            "n_communities": result.hour.n_communities,
            "n_slices": result.hour.n_slices,
            "modularity": round(result.hour.modularity, MODULARITY_DECIMALS),
        },
    }


@pytest.fixture(scope="session")
def goldens(request, paper_result) -> dict:
    """The golden fixture, regenerated under ``--update-goldens``."""
    if request.config.getoption("--update-goldens"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(collect_goldens(paper_result), indent=2, sort_keys=True)
            + "\n"
        )
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"{GOLDEN_PATH} is missing; run pytest with --update-goldens"
        )
    return json.loads(GOLDEN_PATH.read_text())


def _assert_matches(measured: dict, goldens: dict) -> None:
    assert measured.keys() == goldens.keys()
    for table, golden_values in goldens.items():
        assert measured[table] == golden_values, (
            f"{table} drifted from the golden fixture: "
            f"expected {golden_values}, measured {measured[table]} "
            "(if the change is deliberate, rerun with --update-goldens)"
        )


class TestGoldenFacade:
    """Legacy ``NetworkExpansionOptimiser.run()`` path (serial)."""

    def test_headline_numbers_pinned(self, paper_result, goldens):
        _assert_matches(collect_goldens(paper_result), goldens)


class TestGoldenRunner:
    """Direct ``PipelineRunner`` path, run with ``jobs=2``."""

    def test_headline_numbers_pinned(self, paper_runner_result, goldens):
        _assert_matches(collect_goldens(paper_runner_result), goldens)

    def test_executor_parity_byte_identical(
        self, paper_result, paper_runner_result, goldens, tmp_path
    ):
        """jobs=1, jobs=4 threads and jobs=4 processes agree to the byte.

        The process run shares stage values with its workers through an
        on-disk cache only, so this also proves the cross-process
        rendezvous reproduces the serial numbers exactly.
        """
        from repro import PipelineRunner
        from repro.pipeline.cache import StageCache
        from repro.serialize import canonical_json
        from repro.synth import generate_paper_dataset

        thread_result = PipelineRunner(
            generate_paper_dataset(seed=7), jobs=4, executor="thread"
        ).run()
        process_runner = PipelineRunner(
            generate_paper_dataset(seed=7),
            cache=StageCache(tmp_path / "process-cache"),
            jobs=4,
            executor="process",
        )
        process_result = process_runner.run()
        serial_bytes = canonical_json(paper_result.headline())
        assert canonical_json(thread_result.headline()) == serial_bytes
        assert canonical_json(process_result.headline()) == serial_bytes
        assert canonical_json(paper_runner_result.headline()) == serial_bytes
        _assert_matches(collect_goldens(process_result), goldens)
        # every stage computed exactly once, in some worker
        assert sum(process_runner.executions.values()) == 7

    def test_partitions_identical_across_paths(
        self, paper_result, paper_runner_result
    ):
        assert paper_result.basic.partition == paper_runner_result.basic.partition
        assert (
            paper_result.day.station_partition
            == paper_runner_result.day.station_partition
        )
        assert (
            paper_result.hour.station_partition
            == paper_runner_result.hour.station_partition
        )
