"""Run the public API's docstring examples as tests.

Modules listed here opt into doctest coverage; examples double as
always-true documentation.  CI runs this file with the fast suite, so
a drifted example fails the build.
"""

import doctest

import pytest

import repro.pipeline.runner
import repro.serialize
import repro.service.datasets
import repro.store.backend
import repro.store.lru

MODULES = [
    repro.pipeline.runner,
    repro.serialize,
    repro.service.datasets,
    repro.store.backend,
    repro.store.lru,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests_pass(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {module.__name__}"


def test_doctest_coverage_is_real():
    """The suite exercises a meaningful number of examples."""
    attempted = sum(doctest.testmod(m).attempted for m in MODULES)
    assert attempted >= 5
