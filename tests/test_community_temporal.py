"""Tests for multislice (temporal) community detection."""

import pytest

from repro.community import (
    build_sliced_graph,
    collapse_to_stations,
    detect_temporal_communities,
    louvain,
)
from repro.config import TemporalCommunityConfig
from repro.exceptions import CommunityError


def commuter_world() -> list[tuple[str, str, int]]:
    """Two station groups: one active in slice 0, one in slice 1."""
    trips = []
    for _ in range(30):
        trips.append(("a1", "a2", 0))
        trips.append(("a2", "a1", 0))
        trips.append(("b1", "b2", 1))
        trips.append(("b2", "b1", 1))
    # A little cross traffic so the graph is connected.
    trips.append(("a1", "b1", 0))
    trips.append(("b1", "a1", 1))
    return trips


class TestBuildSlicedGraph:
    def test_nodes_are_station_slice_pairs(self):
        graph = build_sliced_graph([("x", "y", 0)], n_slices=2, coupling=0.0)
        assert ("x", 0) in graph
        assert ("y", 0) in graph
        assert ("x", 1) not in graph

    def test_trip_weights_accumulate(self):
        graph = build_sliced_graph(
            [("x", "y", 0), ("x", "y", 0), ("y", "x", 0)], 2, 0.0
        )
        assert graph.weight(("x", 0), ("y", 0)) == 3.0

    def test_coupling_edges_join_active_slices(self):
        trips = [("x", "y", 0), ("x", "y", 2)]
        graph = build_sliced_graph(trips, 3, coupling=1.0)
        assert graph.weight(("x", 0), ("x", 2)) > 0.0
        # y also appears in slices 0 and 2.
        assert graph.weight(("y", 0), ("y", 2)) > 0.0

    def test_no_coupling_for_single_slice_station(self):
        graph = build_sliced_graph([("x", "y", 1)], 3, coupling=5.0)
        assert graph.node_count == 2
        assert graph.edge_count == 1

    def test_coupling_scales_with_activity(self):
        trips = [("x", "y", 0)] * 10 + [("x", "y", 1)] * 10
        weak = build_sliced_graph(trips, 2, coupling=0.1)
        strong = build_sliced_graph(trips, 2, coupling=1.0)
        assert strong.weight(("x", 0), ("x", 1)) == pytest.approx(
            10.0 * weak.weight(("x", 0), ("x", 1))
        )

    def test_bad_slice_index_rejected(self):
        with pytest.raises(CommunityError):
            build_sliced_graph([("x", "y", 7)], 7, 0.0)
        with pytest.raises(CommunityError):
            build_sliced_graph([("x", "y", -1)], 7, 0.0)

    def test_bad_slice_count_rejected(self):
        with pytest.raises(CommunityError):
            build_sliced_graph([], 0, 0.0)


class TestCollapse:
    def test_majority_assignment(self):
        trips = commuter_world()
        graph = build_sliced_graph(trips, 2, coupling=0.2)
        result = louvain(graph)
        stations = collapse_to_stations(result.partition, trips)
        assert set(stations.assignment) == {"a1", "a2", "b1", "b2"}

    def test_every_station_assigned_once(self):
        trips = commuter_world()
        outcome = detect_temporal_communities(
            trips, 2, TemporalCommunityConfig(coupling=0.2)
        )
        assert len(outcome.station_partition) == 4


class TestDetectTemporalCommunities:
    def test_temporal_groups_separate(self):
        outcome = detect_temporal_communities(
            commuter_world(), 2, TemporalCommunityConfig(coupling=0.2)
        )
        partition = outcome.station_partition
        assert partition["a1"] == partition["a2"]
        assert partition["b1"] == partition["b2"]
        assert partition["a1"] != partition["b1"]

    def test_modularity_positive(self):
        outcome = detect_temporal_communities(
            commuter_world(), 2, TemporalCommunityConfig(coupling=0.2)
        )
        assert outcome.modularity > 0.0

    def test_no_trips_rejected(self):
        with pytest.raises(CommunityError):
            detect_temporal_communities([], 7, TemporalCommunityConfig())

    def test_strong_coupling_merges_slices(self):
        # With overwhelming coupling each station's copies stick
        # together, so stations with shared trips merge across slices.
        trips = [("x", "y", s) for s in range(4)] * 5
        outcome = detect_temporal_communities(
            trips, 4, TemporalCommunityConfig(coupling=50.0)
        )
        assert outcome.n_communities <= 2

    def test_finer_slicing_does_not_lower_modularity(self, small_result):
        # The paper's headline trend: G_Basic <= G_Day <= G_Hour.
        basic = small_result.basic.modularity
        day = small_result.day.modularity
        hour = small_result.hour.modularity
        assert basic <= day + 0.02
        assert day <= hour + 0.02

    def test_slice_partition_consistent_with_station_partition(self, small_result):
        outcome = small_result.day
        # Station partition labels drawn from slice partition communities.
        assert outcome.station_partition.n_communities <= (
            outcome.slice_partition.n_communities
        )
