"""Tests for the alternative condensation strategies."""

import pytest

from repro.cluster import cluster_diameter_m, grid_condense, kmeans_condense
from repro.geo import GeoPoint, destination_point

CENTER = GeoPoint(53.3473, -6.2591)


def at(bearing: float, distance: float) -> GeoPoint:
    return destination_point(CENTER, bearing, distance)


@pytest.fixture
def scattered_points() -> dict[int, GeoPoint]:
    points = {}
    index = 0
    for ring in (300.0, 900.0, 1_800.0):
        for bearing in range(0, 360, 30):
            points[index] = at(float(bearing), ring)
            index += 1
    return points


class TestGridCondense:
    def test_partition_covers_everything(self, scattered_points):
        result = grid_condense(scattered_points, {}, cell_m=200.0)
        assignment = result.assignment()
        assert set(assignment) == set(scattered_points)

    def test_cell_size_bounds_diameter(self, scattered_points):
        result = grid_condense(scattered_points, {}, cell_m=200.0)
        for cluster in result.clusters:
            # Grid diameter bound: cell diagonal (plus slack for the
            # spherical projection).
            assert cluster_diameter_m(cluster, scattered_points) <= 200.0 * 1.5

    def test_larger_cells_fewer_clusters(self, scattered_points):
        small = grid_condense(scattered_points, {}, cell_m=100.0)
        large = grid_condense(scattered_points, {}, cell_m=1_000.0)
        assert large.n_clusters <= small.n_clusters

    def test_preassignment_respected(self, scattered_points):
        stations = {999: CENTER}
        near = dict(scattered_points)
        near[500] = at(0.0, 20.0)
        near[999] = CENTER
        result = grid_condense(near, stations, cell_m=200.0)
        assert 500 in result.station_members[999]

    def test_cluster_ids_sequential(self, scattered_points):
        result = grid_condense(scattered_points, {}, cell_m=150.0)
        assert [c.cluster_id for c in result.clusters] == list(
            range(result.n_clusters)
        )


class TestKmeansCondense:
    def test_produces_k_clusters(self, scattered_points):
        result = kmeans_condense(scattered_points, {}, k=6)
        assert 1 <= result.n_clusters <= 6
        assignment = result.assignment()
        assert set(assignment) == set(scattered_points)

    def test_k_capped_by_points(self):
        points = {1: CENTER, 2: at(0.0, 500.0)}
        result = kmeans_condense(points, {}, k=10)
        assert result.n_clusters <= 2

    def test_deterministic_for_seed(self, scattered_points):
        a = kmeans_condense(scattered_points, {}, k=5, seed=3)
        b = kmeans_condense(scattered_points, {}, k=5, seed=3)
        assert a.assignment() == b.assignment()

    def test_invalid_k(self, scattered_points):
        with pytest.raises(ValueError):
            kmeans_condense(scattered_points, {}, k=0)

    def test_spatial_coherence(self, scattered_points):
        # Clusters should be far tighter than the overall spread.
        result = kmeans_condense(scattered_points, {}, k=8, seed=1)
        diameters = [
            cluster_diameter_m(c, scattered_points) for c in result.clusters
        ]
        assert max(diameters) < 3_000.0

    def test_empty_leftover(self):
        stations = {1: CENTER}
        points = {1: CENTER, 2: at(0.0, 10.0)}
        result = kmeans_condense(points, stations, k=3)
        assert result.n_clusters == 0
        assert result.station_members[1] == [1, 2]
