"""Tests for the markdown report generator."""

from repro.reporting import render_markdown_report, write_markdown_report


class TestMarkdownReport:
    def test_contains_every_section(self, small_result):
        text = render_markdown_report(small_result, title="Test report")
        assert text.startswith("# Test report")
        for heading in (
            "Table I", "Table II", "Table III", "Table IV",
            "Table V", "Table VI", "Figure 5", "Figure 7",
        ):
            assert f"## {heading}" in text

    def test_contains_comparison_tables(self, small_result):
        text = render_markdown_report(small_result)
        assert "| Measure | Paper | Measured | Ratio |" in text

    def test_validation_status_included(self, small_result):
        text = render_markdown_report(small_result)
        assert "validation:" in text

    def test_write_creates_file(self, small_result, tmp_path):
        path = write_markdown_report(
            small_result, tmp_path / "nested" / "report.md"
        )
        assert path.exists()
        assert path.read_text().startswith("#")
