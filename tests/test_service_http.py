"""End-to-end HTTP tests against an ephemeral ``repro serve`` port.

The suite runs against the default storage wiring, or — when
``REPRO_TEST_STORE_BACKEND`` is set (CI matrix) — against a full
``--store-dir`` service on that backend (``dir``/``sharded``/
``memory``), so every route stays green on every backend.
"""

import json
import os
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import (
    DatasetRef,
    ExpansionService,
    ScenarioSpec,
    canonical_envelope,
    make_server,
)


def build_service(tmp_path_factory, **kwargs):
    """An :class:`ExpansionService` honouring the CI backend matrix."""
    backend = os.environ.get("REPRO_TEST_STORE_BACKEND")
    if backend:
        return ExpansionService(
            store_dir=(
                None
                if backend == "memory"
                else tmp_path_factory.mktemp("http-store")
            ),
            store_backend=backend,
            **kwargs,
        )
    return ExpansionService(
        cache_dir=tmp_path_factory.mktemp("http-stage-cache"), **kwargs
    )


@pytest.fixture(scope="module")
def server(small_raw, tmp_path_factory):
    service = build_service(tmp_path_factory, max_workers=4)
    service.register_dataset("small", small_raw)
    http_server = make_server(service, port=0).start_background()
    yield http_server
    http_server.stop()
    service.close()


def request(server, path, body=None, method=None):
    """(status, bytes) for one HTTP exchange; errors are not raised."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        server.url + path, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=300) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


RUN_BODY = {"dataset": {"kind": "named", "name": "small"}}


class TestHealthz:
    def test_ok(self, server):
        status, body = request(server, "/v1/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert "pipeline_executions" in payload

    def test_reports_per_namespace_store_occupancy(self, server):
        _, body = request(server, "/v1/healthz")
        store = json.loads(body)["store"]
        for name in ("results", "datasets"):
            block = store[name]
            assert {"entries", "bytes", "hits", "misses", "stores",
                    "evictions"} <= set(block)


class TestJobListing:
    def test_get_jobs_lists_submitted_jobs(self, server):
        _, body = request(server, "/v1/runs", {**RUN_BODY, "wait": False})
        job_id = json.loads(body)["job_id"]
        status, body = request(server, "/v1/jobs")
        assert status == 200
        listing = json.loads(body)
        assert listing["type"] == "JobList"
        assert job_id in {job["job_id"] for job in listing["jobs"]}


class TestRuns:
    def test_post_run_returns_canonical_envelope(self, server, small_result):
        status, body = request(server, "/v1/runs", RUN_BODY)
        assert status == 200
        envelope = json.loads(body)
        assert envelope["outputs"]["run"]["headline"] == small_result.headline()
        # The HTTP bytes ARE the canonical envelope serialisation.
        assert body.decode() == canonical_envelope(envelope)

    def test_result_endpoint_serves_identical_bytes(self, server):
        status, body = request(server, "/v1/runs", RUN_BODY)
        fingerprint = json.loads(body)["fingerprint"]
        status, stored = request(server, f"/v1/results/{fingerprint}")
        assert status == 200
        assert stored == body

    def test_python_api_yields_identical_bytes(self, server, small_raw):
        _, body = request(server, "/v1/runs", RUN_BODY)
        envelope = server.service.run(
            ScenarioSpec(dataset=DatasetRef.named("small")), timeout=300
        )
        assert canonical_envelope(envelope).encode() == body

    def test_async_submission_via_jobs_endpoint(self, server):
        status, body = request(
            server, "/v1/runs", {**RUN_BODY, "wait": False}
        )
        assert status == 202
        job = json.loads(body)
        job_id = job["job_id"]
        deadline = threading.Event()
        for _ in range(600):
            status, body = request(server, f"/v1/jobs/{job_id}")
            assert status == 200
            if json.loads(body)["status"] in ("done", "failed"):
                break
            deadline.wait(0.05)
        payload = json.loads(body)
        assert payload["status"] == "done"
        status, _ = request(server, payload["result_url"])
        assert status == 200

    def test_concurrent_identical_requests_execute_once(self, server):
        executions_before = server.service.pipeline_executions
        body = {
            "dataset": {"kind": "named", "name": "small"},
            "overrides": {"community.seed": 777},
        }
        barrier = threading.Barrier(6)
        responses = []

        def client():
            barrier.wait()
            responses.append(request(server, "/v1/runs", body))

        threads = [threading.Thread(target=client) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert [status for status, _ in responses] == [200] * 6
        bodies = {payload for _, payload in responses}
        assert len(bodies) == 1  # byte-identical envelopes for everyone
        assert server.service.pipeline_executions == executions_before + 1


class TestSweeps:
    def test_post_sweep(self, server):
        status, body = request(
            server,
            "/v1/sweeps",
            {
                "dataset": {"kind": "named", "name": "small"},
                "sweep_axes": {"temporal.coupling": [0.05, 0.25]},
            },
        )
        assert status == 200
        sweep = json.loads(body)["outputs"]["sweep"]
        assert len(sweep["scenarios"]) == 2

    def test_post_dataset_sweep(self, server, small_raw):
        request(server, "/v1/datasets/sweep-twin", small_raw.to_dict(), "PUT")
        status, body = request(
            server, "/v1/sweeps", {"sweep_datasets": ["small", "sweep-twin"]}
        )
        assert status == 200
        envelope = json.loads(body)
        sweep = envelope["outputs"]["sweep"]
        assert [d["name"] for d in sweep["datasets"]] == [
            "small", "sweep-twin",
        ]
        # Identical content under two names: same child fingerprint
        # (identity is the digest), both children served from the store.
        children = [s["fingerprint"] for s in sweep["scenarios"]]
        assert children[0] == children[1]
        status, child = request(server, sweep["scenarios"][0]["result_url"])
        assert status == 200
        assert json.loads(child)["dataset_digest"] == (
            envelope["dataset_digests"]["small"]
        )
        request(server, "/v1/datasets/sweep-twin", method="DELETE")

    def test_dataset_sweep_with_unknown_name_400(self, server):
        status, body = request(
            server, "/v1/sweeps", {"sweep_datasets": ["never-uploaded"]}
        )
        assert status == 400
        assert "never-uploaded" in json.loads(body)["error"]


class TestDatasets:
    def test_upload_run_by_name_delete(self, server, small_raw):
        """The dataset-management happy path, end to end over HTTP."""
        status, body = request(
            server, "/v1/datasets/uploaded", small_raw.to_dict(), "PUT"
        )
        assert status == 201
        meta = json.loads(body)
        assert meta["name"] == "uploaded" and meta["digest"]
        # Visible in the listing and individually.
        status, body = request(server, "/v1/datasets")
        assert status == 200
        assert "uploaded" in {d["name"] for d in json.loads(body)["datasets"]}
        status, body = request(server, "/v1/datasets/uploaded")
        assert json.loads(body)["digest"] == meta["digest"]
        # Runnable by name; identical rows share results with the
        # registered "small" dataset (same content digest).
        status, body = request(
            server, "/v1/runs", {"dataset": {"kind": "named", "name": "uploaded"}}
        )
        assert status == 200
        assert json.loads(body)["dataset_digest"] == meta["digest"]
        # Re-upload is an overwrite (200), delete makes it 404.
        status, _ = request(
            server, "/v1/datasets/uploaded", small_raw.to_dict(), "PUT"
        )
        assert status == 200
        status, _ = request(server, "/v1/datasets/uploaded", method="DELETE")
        assert status == 200
        status, _ = request(server, "/v1/datasets/uploaded")
        assert status == 404
        status, _ = request(server, "/v1/datasets/uploaded", method="DELETE")
        assert status == 404

    def test_bad_upload_rejected(self, server):
        status, body = request(
            server, "/v1/datasets/bad", {"locations": [[1]]}, "PUT"
        )
        assert status == 400
        assert "location row" in json.loads(body)["error"]

    def test_path_hostile_name_rejected(self, server, small_raw):
        status, _ = request(
            server, "/v1/datasets/..%2Fescape", small_raw.to_dict(), "PUT"
        )
        assert status == 400

    def test_invalid_name_reads_as_absent(self, server):
        """GET/DELETE with a malformed name are clean 404s, not crashes."""
        for path in ("/v1/datasets/bad%20name", "/v1/datasets/..%2Fetc"):
            status, body = request(server, path)
            assert status == 404, body
            status, body = request(server, path, method="DELETE")
            assert status == 404, body

    def test_oversized_upload_413(self, small_raw):
        from repro.service import ExpansionService, make_server

        service = ExpansionService(max_dataset_bytes=128)
        http_server = make_server(service, port=0).start_background()
        try:
            status, body = request(
                http_server, "/v1/datasets/big", small_raw.to_dict(), "PUT"
            )
            assert status == 413
            assert "cap" in json.loads(body)["error"]
        finally:
            http_server.stop()
            service.close()


class TestResultViews:
    @pytest.fixture(scope="class")
    def stored(self, server):
        """(fingerprint, envelope dict, canonical bytes) of a stored run."""
        status, body = request(server, "/v1/runs", RUN_BODY)
        assert status == 200
        envelope = json.loads(body)
        return envelope["fingerprint"], envelope, body

    def test_headline_view_is_small_and_identified(self, server, stored):
        fingerprint, envelope, body = stored
        status, slim = request(server, f"/v1/results/{fingerprint}?fields=headline")
        assert status == 200
        view = json.loads(slim)
        assert view["fingerprint"] == fingerprint
        assert view["outputs"]["run"]["headline"] == envelope["outputs"]["run"]["headline"]
        assert len(slim) < len(body) // 10

    def test_section_without_page_returns_subtree(self, server, stored):
        fingerprint, envelope, _ = stored
        status, body = request(
            server, f"/v1/results/{fingerprint}?section=outputs.run.headline"
        )
        assert status == 200
        document = json.loads(body)
        assert document["type"] == "ResultSection"
        assert document["value"] == envelope["outputs"]["run"]["headline"]

    def test_paginated_slice_partition_reassembles_byte_identical(
        self, server, stored
    ):
        """The acceptance path: page through, splice back, compare bytes."""
        fingerprint, envelope, body = stored
        section = "outputs.run.day.slice_partition.assignment"
        items = []
        page, pages = 1, 1
        while page <= pages:
            status, chunk = request(
                server,
                f"/v1/results/{fingerprint}?section={section}"
                f"&page={page}&page_size=200",
            )
            assert status == 200
            document = json.loads(chunk)
            assert document["page"] == page
            pages = document["pages"]
            items.extend(document["items"])
            page += 1
        assert pages > 1  # the section genuinely needed multiple pages
        assert document["total"] == len(items)
        spliced = json.loads(body)
        spliced["outputs"]["run"]["day"]["slice_partition"]["assignment"] = items
        assert canonical_envelope(spliced).encode() == body

    def test_ndjson_slice_stream_covers_the_full_assignment(self, server, stored):
        fingerprint, envelope, _ = stored
        req = urllib.request.Request(
            server.url + f"/v1/results/{fingerprint}/slices?block=day"
        )
        with urllib.request.urlopen(req, timeout=300) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            lines = [json.loads(line) for line in response]
        header, slices = lines[0], lines[1:]
        assert header["type"] == "SliceStream"
        assert header["block"] == "day"
        assert len(slices) == header["n_slices"]
        assert [line["slice"] for line in slices] == sorted(
            line["slice"] for line in slices
        )
        reassembled = [
            pair for line in slices for pair in line["assignment"]
        ]
        reassembled.sort(key=lambda pair: json.dumps(pair[0]))
        original = envelope["outputs"]["run"]["day"]["slice_partition"]["assignment"]
        assert reassembled == original
        assert header["total_entries"] == len(original)

    def test_section_errors(self, server, stored):
        fingerprint, _, _ = stored
        status, _ = request(
            server, f"/v1/results/{fingerprint}?section=outputs.nope"
        )
        assert status == 404
        status, _ = request(
            server,
            f"/v1/results/{fingerprint}?section=outputs.run.headline&page=1",
        )
        assert status == 400  # not a list
        status, _ = request(
            server,
            f"/v1/results/{fingerprint}"
            "?section=outputs.run.day.slice_partition.assignment&page=9999",
        )
        assert status == 400  # page out of range
        status, _ = request(
            server,
            f"/v1/results/{fingerprint}?fields=headline&section=outputs",
        )
        assert status == 400  # mutually exclusive
        status, _ = request(
            server, f"/v1/results/{fingerprint}/slices?block=century"
        )
        assert status == 404

    def test_sweep_children_individually_addressable(self, server):
        status, body = request(
            server,
            "/v1/sweeps",
            {
                "dataset": {"kind": "named", "name": "small"},
                "sweep_axes": {"temporal.coupling": [0.07, 0.21]},
            },
        )
        assert status == 200
        scenarios = json.loads(body)["outputs"]["sweep"]["scenarios"]
        assert all(s["fingerprint"] for s in scenarios)
        child = scenarios[0]
        status, child_body = request(server, child["result_url"])
        assert status == 200
        child_envelope = json.loads(child_body)
        assert child_envelope["spec"]["overrides"] == child["overrides"]
        assert (
            child_envelope["outputs"]["run"]["headline"] == child["headline"]
        )
        # Running the child scenario directly serves the stored bytes —
        # no recompute, byte-identical envelope.
        executions = server.service.pipeline_executions
        status, direct = request(
            server,
            "/v1/runs",
            {
                "dataset": {"kind": "named", "name": "small"},
                "overrides": child["overrides"],
            },
        )
        assert status == 200
        assert direct == child_body
        assert server.service.pipeline_executions == executions


class TestCancellation:
    def test_delete_unknown_job_404(self, server):
        status, _ = request(server, "/v1/jobs/job-424242", method="DELETE")
        assert status == 404

    def test_cancel_finished_job_conflicts_409(self, server):
        status, body = request(server, "/v1/runs", {**RUN_BODY, "wait": False})
        job_id = json.loads(body)["job_id"]
        for _ in range(600):
            status, body = request(server, f"/v1/jobs/{job_id}")
            if json.loads(body)["status"] in ("done", "failed"):
                break
            threading.Event().wait(0.05)
        assert json.loads(body)["status"] == "done"
        status, body = request(server, f"/v1/jobs/{job_id}", method="DELETE")
        assert status == 409
        payload = json.loads(body)
        assert payload["status"] == "done"
        assert "already finished" in payload["note"]

    def test_cancel_pending_job_reports_cancelled(self, small_raw, tmp_path):
        """A single-worker server with a busy lane cancels the queued job."""
        from repro.service import ExpansionService, make_server

        service = ExpansionService(max_workers=1)
        service.register_dataset("small", small_raw)
        http_server = make_server(service, port=0).start_background()
        try:
            request(
                http_server,
                "/v1/runs",
                {
                    "dataset": {"kind": "named", "name": "small"},
                    "overrides": {"community.seed": 971},
                    "wait": False,
                },
            )
            status, body = request(
                http_server,
                "/v1/runs",
                {
                    "dataset": {"kind": "named", "name": "small"},
                    "overrides": {"community.seed": 972},
                    "wait": False,
                },
            )
            job_id = json.loads(body)["job_id"]
            status, body = request(
                http_server, f"/v1/jobs/{job_id}", method="DELETE"
            )
            assert status == 202
            assert json.loads(body)["cancel_requested"] is True
            for _ in range(600):
                status, body = request(http_server, f"/v1/jobs/{job_id}")
                if json.loads(body)["status"] in ("done", "failed", "cancelled"):
                    break
                threading.Event().wait(0.05)
            assert json.loads(body)["status"] == "cancelled"
            # The route stays useful afterwards: the same scenario can be
            # resubmitted and completes against the intact stage cache.
            status, body = request(
                http_server,
                "/v1/runs",
                {
                    "dataset": {"kind": "named", "name": "small"},
                    "overrides": {"community.seed": 972},
                },
            )
            assert status == 200
            assert json.loads(body)["outputs"]["run"]["type"] == "ExpansionResult"
        finally:
            http_server.stop()
            service.close()


class TestErrors:
    def test_unknown_route_404(self, server):
        status, body = request(server, "/v1/nonsense")
        assert status == 404
        assert "error" in json.loads(body)

    def test_unknown_job_404(self, server):
        status, _ = request(server, "/v1/jobs/job-424242")
        assert status == 404

    def test_unknown_result_404(self, server):
        status, _ = request(server, "/v1/results/" + "0" * 64)
        assert status == 404

    def test_bad_fingerprint_400(self, server):
        status, _ = request(server, "/v1/results/NOT-HEX")
        assert status == 400

    def test_bad_override_400(self, server):
        status, body = request(
            server,
            "/v1/runs",
            {**RUN_BODY, "overrides": {"temporal.bogus": 1}},
        )
        assert status == 400
        assert "temporal" in json.loads(body)["error"]

    def test_unknown_dataset_400(self, server):
        status, _ = request(
            server, "/v1/runs", {"dataset": {"kind": "named", "name": "nope"}}
        )
        assert status == 400

    def test_malformed_json_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/runs", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                status = resp.status
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 400
