"""End-to-end HTTP tests against an ephemeral ``repro serve`` port."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import (
    DatasetRef,
    ExpansionService,
    ScenarioSpec,
    canonical_envelope,
    make_server,
)


@pytest.fixture(scope="module")
def server(small_raw, tmp_path_factory):
    service = ExpansionService(
        cache_dir=tmp_path_factory.mktemp("http-stage-cache"), max_workers=4
    )
    service.register_dataset("small", small_raw)
    http_server = make_server(service, port=0).start_background()
    yield http_server
    http_server.stop()
    service.close()


def request(server, path, body=None, method=None):
    """(status, bytes) for one HTTP exchange; errors are not raised."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        server.url + path, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=300) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


RUN_BODY = {"dataset": {"kind": "named", "name": "small"}}


class TestHealthz:
    def test_ok(self, server):
        status, body = request(server, "/v1/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert "pipeline_executions" in payload


class TestRuns:
    def test_post_run_returns_canonical_envelope(self, server, small_result):
        status, body = request(server, "/v1/runs", RUN_BODY)
        assert status == 200
        envelope = json.loads(body)
        assert envelope["outputs"]["run"]["headline"] == small_result.headline()
        # The HTTP bytes ARE the canonical envelope serialisation.
        assert body.decode() == canonical_envelope(envelope)

    def test_result_endpoint_serves_identical_bytes(self, server):
        status, body = request(server, "/v1/runs", RUN_BODY)
        fingerprint = json.loads(body)["fingerprint"]
        status, stored = request(server, f"/v1/results/{fingerprint}")
        assert status == 200
        assert stored == body

    def test_python_api_yields_identical_bytes(self, server, small_raw):
        _, body = request(server, "/v1/runs", RUN_BODY)
        envelope = server.service.run(
            ScenarioSpec(dataset=DatasetRef.named("small")), timeout=300
        )
        assert canonical_envelope(envelope).encode() == body

    def test_async_submission_via_jobs_endpoint(self, server):
        status, body = request(
            server, "/v1/runs", {**RUN_BODY, "wait": False}
        )
        assert status == 202
        job = json.loads(body)
        job_id = job["job_id"]
        deadline = threading.Event()
        for _ in range(600):
            status, body = request(server, f"/v1/jobs/{job_id}")
            assert status == 200
            if json.loads(body)["status"] in ("done", "failed"):
                break
            deadline.wait(0.05)
        payload = json.loads(body)
        assert payload["status"] == "done"
        status, _ = request(server, payload["result_url"])
        assert status == 200

    def test_concurrent_identical_requests_execute_once(self, server):
        executions_before = server.service.pipeline_executions
        body = {
            "dataset": {"kind": "named", "name": "small"},
            "overrides": {"community.seed": 777},
        }
        barrier = threading.Barrier(6)
        responses = []

        def client():
            barrier.wait()
            responses.append(request(server, "/v1/runs", body))

        threads = [threading.Thread(target=client) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert [status for status, _ in responses] == [200] * 6
        bodies = {payload for _, payload in responses}
        assert len(bodies) == 1  # byte-identical envelopes for everyone
        assert server.service.pipeline_executions == executions_before + 1


class TestSweeps:
    def test_post_sweep(self, server):
        status, body = request(
            server,
            "/v1/sweeps",
            {
                "dataset": {"kind": "named", "name": "small"},
                "sweep_axes": {"temporal.coupling": [0.05, 0.25]},
            },
        )
        assert status == 200
        sweep = json.loads(body)["outputs"]["sweep"]
        assert len(sweep["scenarios"]) == 2


class TestErrors:
    def test_unknown_route_404(self, server):
        status, body = request(server, "/v1/nonsense")
        assert status == 404
        assert "error" in json.loads(body)

    def test_unknown_job_404(self, server):
        status, _ = request(server, "/v1/jobs/job-424242")
        assert status == 404

    def test_unknown_result_404(self, server):
        status, _ = request(server, "/v1/results/" + "0" * 64)
        assert status == 404

    def test_bad_fingerprint_400(self, server):
        status, _ = request(server, "/v1/results/NOT-HEX")
        assert status == 400

    def test_bad_override_400(self, server):
        status, body = request(
            server,
            "/v1/runs",
            {**RUN_BODY, "overrides": {"temporal.bogus": 1}},
        )
        assert status == 400
        assert "temporal" in json.loads(body)["error"]

    def test_unknown_dataset_400(self, server):
        status, _ = request(
            server, "/v1/runs", {"dataset": {"kind": "named", "name": "nope"}}
        )
        assert status == 400

    def test_malformed_json_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/runs", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                status = resp.status
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 400
