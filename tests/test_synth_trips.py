"""Tests for the pair pool and trip sampler internals."""

import pytest

# Synthetic generation is numpy-only by design (np.exp demand
# surfaces are not bit-reproducible in pure Python).
pytest.importorskip("numpy")

from repro.geo import haversine_m
from repro.synth import (
    LocationPool,
    PairPool,
    Rng,
    TripSampler,
    TripSamplerConfig,
    build_dublin_zones,
    generate_adhoc_spots,
    generate_stations,
)


@pytest.fixture(scope="module")
def layout():
    zones = build_dublin_zones()
    stations = generate_stations(zones, Rng(3), 20)
    adhoc = generate_adhoc_spots(zones, Rng(4), 120, stations, first_id=20)
    return zones, stations, adhoc


class TestPairPool:
    def test_pairs_unique_and_nonempty(self, layout):
        _, stations, adhoc = layout
        pool = PairPool(stations + adhoc, Rng(5), TripSamplerConfig())
        keys = {
            (min(u.spot_id, v.spot_id), max(u.spot_id, v.spot_id))
            for u, v, _ in pool.pairs
        }
        assert len(keys) == len(pool.pairs)
        assert len(pool.pairs) > len(stations + adhoc)

    def test_no_self_pairs(self, layout):
        _, stations, adhoc = layout
        pool = PairPool(stations + adhoc, Rng(5), TripSamplerConfig())
        assert all(u.spot_id != v.spot_id for u, v, _ in pool.pairs)

    def test_pairs_prefer_short_distances(self, layout):
        _, stations, adhoc = layout
        pool = PairPool(stations + adhoc, Rng(5), TripSamplerConfig())
        distances = [
            haversine_m(u.point, v.point) for u, v, _ in pool.pairs
        ]
        mean_pair = sum(distances) / len(distances)
        # Mean pair distance must be far below the city's diameter.
        assert mean_pair < 6_000.0

    def test_sample_directed_returns_pool_pairs(self, layout):
        _, stations, adhoc = layout
        pool = PairPool(stations + adhoc, Rng(5), TripSamplerConfig())
        keys = {
            (min(u.spot_id, v.spot_id), max(u.spot_id, v.spot_id))
            for u, v, _ in pool.pairs
        }
        rng = Rng(6)
        for _ in range(200):
            origin, destination = pool.sample_directed(rng, 2, 8)
            key = (
                min(origin.spot_id, destination.spot_id),
                max(origin.spot_id, destination.spot_id),
            )
            assert key in keys

    def test_commute_time_shifts_destinations(self, layout):
        # At 8 am on a weekday, employment zones must absorb a larger
        # share of destinations than at 8 am on a Sunday.
        _, stations, adhoc = layout
        pool = PairPool(stations + adhoc, Rng(5), TripSamplerConfig())
        rng = Rng(7)

        def employment_share(weekday: int) -> float:
            hits = 0
            for _ in range(2000):
                _, destination = pool.sample_directed(rng, weekday, 8)
                hits += destination.zone.profile == "employment"
            return hits / 2000

        assert employment_share(1) > employment_share(6) * 1.3


class TestLocationPool:
    def _spot(self, layout):
        _, stations, adhoc = layout
        return adhoc[0]

    def test_budget_respected(self, layout):
        spot = self._spot(layout)
        spot.location_ids.clear()
        pool = LocationPool(
            Rng(8), target_locations=10, expected_events=1000,
            first_location_id=100,
        )
        for _ in range(1000):
            pool.location_for_event(spot, spot.point)
        assert pool.created == pytest.approx(10, abs=4)

    def test_ids_sequential_from_first(self, layout):
        spot = self._spot(layout)
        spot.location_ids.clear()
        pool = LocationPool(
            Rng(9), target_locations=5, expected_events=5,
            first_location_id=500,
        )
        for _ in range(5):
            pool.location_for_event(spot, spot.point)
        assert [r.location_id for r in pool.records] == list(
            range(500, 500 + pool.created)
        )

    def test_forced_mint_when_spot_has_no_locations(self, layout):
        spot = self._spot(layout)
        spot.location_ids.clear()
        pool = LocationPool(
            Rng(10), target_locations=0, expected_events=10,
            first_location_id=0,
        )
        location_id = pool.location_for_event(spot, spot.point)
        assert location_id == 0
        assert pool.created == 1


class TestTripSampler:
    def test_generate_count_and_order(self, layout):
        zones, stations, adhoc = layout
        for spot in stations + adhoc:
            spot.location_ids.clear()
        for spot in stations:
            spot.location_ids.append(spot.spot_id)
        sampler = TripSampler(zones, stations, adhoc, Rng(11))
        rentals, pool = sampler.generate(
            500,
            lambda n: LocationPool(Rng(12), 300, n, first_location_id=20),
            n_bikes=10,
        )
        assert len(rentals) == 500
        # Trips are emitted day by day (times within a day are random).
        dates = [r.started_at.date() for r in rentals]
        assert dates == sorted(dates)
        assert all(1 <= r.bike_id <= 10 for r in rentals)

    def test_round_trips_present(self, layout):
        zones, stations, adhoc = layout
        for spot in stations + adhoc:
            spot.location_ids.clear()
        for spot in stations:
            spot.location_ids.append(spot.spot_id)
        config = TripSamplerConfig(
            p_round_trip_leisure=1.0, p_round_trip_other=1.0
        )
        sampler = TripSampler(zones, stations, adhoc, Rng(13), config)
        rentals, _ = sampler.generate(
            50,
            lambda n: LocationPool(Rng(14), 100, n, first_location_id=20),
            n_bikes=5,
        )
        # Every trip is a round trip: origin/destination share a spot,
        # though GPS fixes may differ; durations still positive.
        assert all(r.ended_at > r.started_at for r in rentals)
