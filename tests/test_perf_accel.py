"""Bit-exactness of the numpy-accelerated kernels in :mod:`repro.perf.accel`.

Every kernel must agree with the scalar in-tree implementation *and*
with the pre-optimisation references in :mod:`repro.perf.baseline` to
the last bit — on randomised inputs including sub-epsilon near-ties,
where an evaluation-order drift would first surface.

Without numpy this whole module skips (the kernels are optional by
design); the no-numpy CI leg proves the pure paths stand alone.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

import repro.perf.accel as accel
from repro.cluster.linkage import _linkage_cluster_pure, linkage_cluster
from repro.community.louvain import louvain
from repro.community.modularity import modularity
from repro.community.partition import Partition
from repro.config import CommunityConfig
from repro.geo import GeoPoint, GridIndex, in_dublin, on_land
from repro.geo.dublin import DUBLIN_LAND, _COAST_VERTICES
from repro.graphdb import WeightedGraph
from repro.perf.baseline import baseline_modularity


@pytest.fixture()
def no_accel(monkeypatch):
    """Force the scalar paths for a comparison run."""
    monkeypatch.setattr(accel, "ENABLED", False)


def _random_city_point(rng: random.Random) -> GeoPoint:
    return GeoPoint(53.22 + rng.random() * 0.25, -6.42 + rng.random() * 0.40)


def _random_index(rng: random.Random, n: int) -> GridIndex:
    index: GridIndex[str] = GridIndex(cell_m=rng.choice([50.0, 100.0, 250.0]))
    for i in range(n):
        index.insert(f"p{i}", _random_city_point(rng))
    return index


def test_accel_is_enabled_under_numpy():
    """With numpy importable the self-check must pass and enable accel."""
    assert accel.ENABLED
    assert accel.enabled()


def test_no_accel_env_disables(tmp_path):
    import subprocess
    import sys

    code = "import repro.perf.accel as a; print(a.ENABLED)"
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "REPRO_NO_ACCEL": "1", "PATH": "/usr/bin:/bin"},
        cwd="/root/repo",
    )
    assert out.stdout.strip() == "False", out.stderr


class TestHThreshold:
    def test_threshold_is_exact_decision_boundary(self):
        rng = random.Random(3)
        for _ in range(200):
            radius = rng.random() * rng.choice([10.0, 1000.0, 1e6])
            threshold = accel.h_threshold(radius)
            import math

            assert accel._scalar_distance_from_h(threshold) <= radius
            above = math.nextafter(threshold, math.inf)
            if above <= 1.0:
                assert accel._scalar_distance_from_h(above) > radius

    def test_degenerate_radii(self):
        assert accel.h_threshold(-1.0) == float("-inf")
        # A radius beyond half the planet's circumference admits any h.
        assert accel.h_threshold(1e9) == float("inf")


class TestGridBatchParity:
    def test_within_batch_bit_identical(self):
        rng = random.Random(11)
        for _ in range(15):
            index = _random_index(rng, rng.randint(1, 100))
            centers = [_random_city_point(rng) for _ in range(30)]
            keys = list(index)
            centers += [index.position(rng.choice(keys)) for _ in range(5)]
            for radius in (0.0, 25.0, 300.0, 5000.0):
                scalar = [index.within(center, radius) for center in centers]
                assert accel.within_batch(index, centers, radius) == scalar

    def test_within_radius_on_exact_boundary(self):
        """Radius set to a measured distance: inclusion must not flip."""
        rng = random.Random(13)
        index = _random_index(rng, 60)
        centers = [_random_city_point(rng) for _ in range(20)]
        sample = index.within(centers[0], 2000.0)
        assert sample, "need at least one hit to probe the boundary"
        for _, distance in sample[:5]:
            scalar = [index.within(center, distance) for center in centers]
            assert accel.within_batch(index, centers, distance) == scalar

    def test_nearest_batch_bit_identical_with_ties(self):
        rng = random.Random(17)
        for _ in range(15):
            index = _random_index(rng, rng.randint(2, 80))
            keys = list(index)
            # Duplicate coordinates force exact distance ties.
            for j in range(3):
                index.insert(f"dup{j}", index.position(rng.choice(keys)))
            keys = list(index)
            centers = [_random_city_point(rng) for _ in range(25)]
            centers += [index.position(rng.choice(keys)) for _ in range(5)]
            for exclude in (None, rng.choice(keys), "absent"):
                scalar = [index.nearest(center, exclude) for center in centers]
                assert accel.nearest_batch(index, centers, exclude) == scalar

    def test_dispatch_tracks_index_mutation(self):
        """within_many results stay fresh across inserts and removals."""
        rng = random.Random(19)
        index = _random_index(rng, 40)
        centers = [_random_city_point(rng) for _ in range(12)]
        assert accel.use_grid_batch(index, centers)
        first = index.within_many(centers, 500.0)
        assert first == [index.within(center, 500.0) for center in centers]
        index.insert("fresh", centers[0])
        index.remove("p0")
        second = index.within_many(centers, 500.0)
        assert second == [index.within(center, 500.0) for center in centers]
        assert second != first  # the mutation is visible

    def test_small_batches_and_empty_index_use_scalar_path(self):
        index: GridIndex[str] = GridIndex()
        assert not accel.use_grid_batch(index, [GeoPoint(53.3, -6.2)] * 20)
        index.insert("a", GeoPoint(53.3, -6.2))
        assert not accel.use_grid_batch(index, [GeoPoint(53.3, -6.2)])
        assert accel.use_grid_batch(index, [GeoPoint(53.3, -6.2)] * 8)


class TestOracleParity:
    def test_dublin_oracles_bit_identical(self):
        rng = random.Random(23)
        points = [_random_city_point(rng) for _ in range(4000)]
        # Exact polygon vertices and bbox corners: worst-case inputs
        # for any comparison-order drift.
        points += [GeoPoint(lat, lon) for lat, lon in _COAST_VERTICES]
        points += [GeoPoint(53.20, -6.45), GeoPoint(53.45, -6.05)]
        lats = [point.lat for point in points]
        lons = [point.lon for point in points]
        in_dublin_mask = accel.in_dublin_batch(lats, lons)
        on_land_mask = accel.on_land_batch(lats, lons)
        for point, in_d, on_l in zip(points, in_dublin_mask, on_land_mask):
            assert bool(in_d) == in_dublin(point)
            assert bool(on_l) == on_land(point)

    def test_region_contains_batch_with_holes(self):
        from repro.geo.polygon import Polygon, Region

        shell = Polygon.from_coords(((0.0, 0.0), (0.0, 10.0), (10.0, 10.0), (10.0, 0.0)))
        hole = Polygon.from_coords(((4.0, 4.0), (4.0, 6.0), (6.0, 6.0), (6.0, 4.0)))
        region = Region(shell=shell, holes=(hole,))
        rng = random.Random(29)
        points = [
            GeoPoint(rng.random() * 12.0 - 1.0, rng.random() * 12.0 - 1.0)
            for _ in range(500)
        ]
        mask = accel.region_contains_batch(
            region,
            np.array([point.lat for point in points]),
            np.array([point.lon for point in points]),
        )
        for point, decision in zip(points, mask):
            assert bool(decision) == region.contains(point)


def _random_graph(rng: random.Random, n_min: int = 64, n_max: int = 200) -> WeightedGraph:
    n = rng.randint(n_min, n_max)
    graph = WeightedGraph()
    for i in range(n):
        graph.add_node(i)
    for _ in range(rng.randint(n, 4 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        # Sub-epsilon near-ties: exactly where a reassociated sum drifts.
        weight = rng.choice([1.0, 1.0 + 1e-12, 1.0 + 2e-12, 1.0 + 4e-12, 1.0 + 1e-11, 2.7, 1e-9])
        graph.add_edge(u, v, weight)
    return graph


class TestModularityParity:
    def test_matches_scalar_bit_for_bit(self, no_accel):
        rng = random.Random(31)
        for _ in range(25):
            graph = _random_graph(rng)
            labels = {i: rng.randrange(12) for i in range(len(graph._adj))}
            partition = Partition(labels)
            for resolution in (1.0, 0.6, 1.4):
                scalar = modularity(graph, partition, resolution)
                vectorised = accel.modularity(graph, partition, resolution)
                assert vectorised == scalar

    def test_matches_baseline_reference(self):
        rng = random.Random(37)
        for _ in range(10):
            graph = _random_graph(rng)
            labels = {i: rng.randrange(8) for i in range(len(graph._adj))}
            partition = Partition(labels)
            assert accel.modularity(graph, partition) == baseline_modularity(
                graph, partition
            )

    def test_dispatch_size_floor(self):
        small = WeightedGraph()
        for i in range(accel.MIN_MODULARITY_NODES - 1):
            small.add_node(i)
        assert not accel.use_modularity(small)
        small.add_node("one more")
        assert accel.use_modularity(small)

    def test_louvain_identical_with_and_without_accel(self, monkeypatch):
        """The full Louvain trajectory — sweep plus its modularity
        calls — is invariant to the accel dispatch."""
        rng = random.Random(41)
        config = CommunityConfig(seed=5)
        for _ in range(5):
            graph = _random_graph(rng, 70, 140)
            with_accel = louvain(graph, config)
            monkeypatch.setattr(accel, "ENABLED", False)
            without = louvain(graph, config)
            monkeypatch.setattr(accel, "ENABLED", True)
            assert with_accel.partition == without.partition
            assert with_accel.modularity == without.modularity
            assert with_accel.levels == without.levels


class TestLinkageParity:
    """The pure NN-chain fallback mirrors the numpy path exactly."""

    @pytest.mark.parametrize("linkage", ["complete", "single", "average"])
    def test_pure_matches_numpy(self, linkage):
        rng = random.Random(43)
        for _ in range(12):
            n = rng.randint(2, 24)
            rows = [[0.0] * n for _ in range(n)]
            for i in range(n):
                for j in range(i + 1, n):
                    value = rng.choice(
                        [rng.random() * 100.0, 10.0, 10.0 + 1e-12, 25.0]
                    )
                    rows[i][j] = rows[j][i] = value
            via_numpy = linkage_cluster(rows, linkage)
            pure = _linkage_cluster_pure(
                [[float(v) for v in row] for row in rows], linkage
            )
            assert pure == via_numpy


class TestCleaningParity:
    def test_batch_oracle_rules_identical(self, monkeypatch):
        """Rules 1-2 produce identical reports with and without accel."""
        from repro.data import cleaning
        from repro.synth import GeneratorConfig, SyntheticMobyGenerator

        raw = SyntheticMobyGenerator(
            seed=3,
            config=GeneratorConfig(seed=3, n_clean_rentals=400, n_bikes=12),
        ).generate()
        monkeypatch.setattr(cleaning, "_BATCH_ORACLE_MIN_RECORDS", 1)
        batched, batched_report = cleaning.clean_dataset(raw)
        monkeypatch.setattr(accel, "ENABLED", False)
        scalar, scalar_report = cleaning.clean_dataset(raw)
        assert batched_report.to_dict() == scalar_report.to_dict()
        assert batched.summary() == scalar.summary()


class TestPipelineEnvelopeParity:
    def test_hac_stage_identical_with_and_without_accel(self, monkeypatch):
        """cluster_locations — the heaviest accel consumer — yields the
        same clusters either way on a realistic city."""
        from repro.cluster.hac import cluster_locations

        rng = random.Random(47)
        location_points = {
            i: _random_city_point(rng) for i in range(300)
        }
        station_points = {
            i: location_points[i] for i in range(0, 300, 40)
        }
        with_accel = cluster_locations(location_points, station_points)
        monkeypatch.setattr(accel, "ENABLED", False)
        without = cluster_locations(location_points, station_points)
        assert with_accel == without
