"""Tests for the selected network, trip projection and profiles."""

import pytest

from repro.community import Partition
from repro.core import (
    DAY_NAMES,
    Station,
    TripOD,
    community_table,
    commute_peak_share,
    daily_profile,
    hourly_profile,
    midday_share,
    self_containment,
    weekend_share,
)
from repro.geo import GeoPoint


def stations_fixture() -> dict[int, Station]:
    return {
        1: Station(1, GeoPoint(53.34, -6.26), "fixed", "A"),
        2: Station(2, GeoPoint(53.35, -6.25), "fixed", "B"),
        3: Station(3, GeoPoint(53.36, -6.24), "selected", "C", 17),
    }


TRIPS = [
    TripOD(1, 2, day_of_week=0, hour_of_day=8),
    TripOD(2, 1, day_of_week=0, hour_of_day=9),
    TripOD(1, 1, day_of_week=5, hour_of_day=13),
    TripOD(3, 3, day_of_week=6, hour_of_day=12),
    TripOD(1, 3, day_of_week=2, hour_of_day=17),
]

PARTITION = Partition.from_assignment({1: 0, 2: 0, 3: 1})


class TestTripOD:
    def test_loop_detection(self):
        assert TripOD(1, 1, 0, 0).is_loop
        assert not TripOD(1, 2, 0, 0).is_loop


class TestCommunityTable:
    def test_rows(self):
        rows = community_table(TRIPS, PARTITION, stations_fixture())
        assert len(rows) == 2
        first = rows[0]
        assert first.n_old_stations == 2
        assert first.n_new_stations == 0
        assert first.trips_within == 3
        assert first.trips_out == 1
        assert first.trips_in == 0
        assert first.trips_total == 4
        second = rows[1]
        assert second.n_new_stations == 1
        assert second.trips_within == 1
        assert second.trips_in == 1

    def test_station_totals(self):
        rows = community_table(TRIPS, PARTITION, stations_fixture())
        assert sum(row.n_stations for row in rows) == 3

    def test_within_plus_cross_counts_trips(self):
        rows = community_table(TRIPS, PARTITION, stations_fixture())
        within = sum(row.trips_within for row in rows)
        out = sum(row.trips_out for row in rows)
        into = sum(row.trips_in for row in rows)
        assert within + out == len(TRIPS)
        assert out == into


class TestSelfContainment:
    def test_value(self):
        assert self_containment(TRIPS, PARTITION) == pytest.approx(4 / 5)

    def test_empty(self):
        assert self_containment([], PARTITION) == 0.0


class TestProfiles:
    def test_daily_profile_normalised(self):
        profiles = daily_profile(TRIPS, PARTITION)
        for values in profiles.values():
            assert len(values) == 7
            assert sum(values) == pytest.approx(1.0)

    def test_daily_attribution_to_origin(self):
        profiles = daily_profile(TRIPS, PARTITION)
        # Community 2 = station 3: one origin trip, on Sunday.
        assert profiles[2][6] == 1.0

    def test_hourly_profile(self):
        profiles = hourly_profile(TRIPS, PARTITION)
        for values in profiles.values():
            assert len(values) == 24
        assert profiles[2][12] == 1.0

    def test_empty_community_zeroes(self):
        partition = Partition.from_assignment({1: 0, 2: 0, 3: 1})
        profiles = daily_profile(
            [TripOD(1, 2, 0, 8)], partition
        )
        assert profiles[2] == [0.0] * 7

    def test_share_helpers(self):
        profile = [0.0] * 7
        profile[5] = 0.4
        profile[6] = 0.1
        assert weekend_share(profile) == pytest.approx(0.5)
        hourly = [0.0] * 24
        hourly[8] = 0.3
        hourly[17] = 0.2
        hourly[12] = 0.5
        assert commute_peak_share(hourly) == pytest.approx(0.5)
        assert midday_share(hourly) == pytest.approx(0.5)

    def test_share_helpers_validate_length(self):
        with pytest.raises(ValueError):
            weekend_share([0.0] * 6)
        with pytest.raises(ValueError):
            commute_peak_share([0.0] * 23)
        with pytest.raises(ValueError):
            midday_share([0.0] * 25)

    def test_day_names(self):
        assert len(DAY_NAMES) == 7
        assert DAY_NAMES[0] == "Mon"


class TestSelectedNetwork:
    def test_station_partition_kinds(self, small_result):
        network = small_result.network
        fixed = network.fixed_station_ids
        selected = network.selected_station_ids
        assert len(fixed) + len(selected) == len(network.stations)
        assert small_result.selection.n_selected == len(selected)

    def test_trips_preserved(self, small_result):
        assert len(small_result.network.trips) == small_result.cleaned.n_rentals

    def test_every_location_assigned(self, small_result):
        network = small_result.network
        assert set(network.location_to_station) == {
            record.location_id for record in small_result.cleaned.locations()
        }
        assert set(network.location_to_station.values()) <= set(network.stations)

    def test_g_basic_consistency(self, small_result):
        g_basic = small_result.network.g_basic()
        assert g_basic.total_weight == pytest.approx(
            len(small_result.network.trips)
        )
        assert g_basic.node_count == len(small_result.network.stations)

    def test_stats_totals(self, small_result):
        stats = small_result.network.stats()
        assert stats.trips_from_fixed + stats.trips_from_selected == stats.n_trips
        assert stats.trips_to_fixed + stats.trips_to_selected == stats.n_trips
        assert (
            stats.edges_from_fixed + stats.edges_from_selected
            == stats.n_directed_edges
        )

    def test_sliced_trips_shapes(self, small_result):
        network = small_result.network
        day = network.day_sliced_trips()
        hour = network.hour_sliced_trips()
        assert len(day) == len(hour) == len(network.trips)
        assert all(0 <= slice_index < 7 for _, _, slice_index in day)
        assert all(0 <= slice_index < 24 for _, _, slice_index in hour)

    def test_new_station_points_are_cluster_centroids(self, small_result):
        candidates = small_result.candidates
        for station_id in small_result.network.selected_station_ids:
            station = small_result.network.stations[station_id]
            assert station.source_cluster_id is not None
            assert station.point == candidates.cluster_centroids[
                station.source_cluster_id
            ]
