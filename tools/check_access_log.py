"""CI driver for the observability leg.

Boots a real ``repro serve --access-log`` subprocess, drives every
route class over the wire, then asserts the contract the structured
log promises: every line is one single-line JSON object carrying the
required keys (``event``, ``ts``, ``trace_id``), with both HTTP
request lines and job transition lines present.  A sample
``/v1/metrics`` scrape is written next to the log so CI can upload
both as artifacts.

Usage: ``PYTHONPATH=src python tools/check_access_log.py``
(writes ``access.jsonl`` and ``metrics.prom`` into the CWD).
"""

import json
import os
import signal
import subprocess
import sys
import urllib.error
import urllib.request
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")
sys.path.insert(0, SRC)

from repro.obs import REQUIRED_KEYS, TRACE_HEADER, is_trace_id  # noqa: E402

LOG = Path("access.jsonl")
SCRAPE = Path("metrics.prom")


def request(url, body=None, method=None, headers=None):
    data = json.dumps(body).encode() if body is not None else None
    all_headers = {"Content-Type": "application/json"} if data else {}
    all_headers.update(headers or {})
    req = urllib.request.Request(url, data=data, method=method, headers=all_headers)
    try:
        with urllib.request.urlopen(req, timeout=600) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def main() -> int:
    LOG.unlink(missing_ok=True)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--access-log", str(LOG), "--healthz-ttl", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": SRC},
    )
    try:
        banner = proc.stdout.readline()
        base = banner.strip().rsplit(" ", 1)[-1]
        if not base.startswith("http://"):
            print(f"unexpected serve banner: {banner!r}", file=sys.stderr)
            return 1
        print(f"driving {base}")
        # One request per route class: success, 404, submission, scrape.
        assert request(f"{base}/v1/healthz")[0] == 200
        assert request(f"{base}/v1/jobs")[0] == 200
        assert request(f"{base}/v1/jobs/job-999999")[0] == 404
        assert request(f"{base}/v1/nope")[0] == 404
        status, _ = request(
            f"{base}/v1/runs",
            body={"dataset": {"kind": "synthetic", "seed": 7}},
            method="POST",
            headers={TRACE_HEADER: "c1c1c1c1" * 4},
        )
        assert status == 200, f"run submission failed with {status}"
        status, scrape = request(f"{base}/v1/metrics")
        assert status == 200
        SCRAPE.write_bytes(scrape)
        print(f"wrote {SCRAPE} ({len(scrape)} bytes)")
    finally:
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=30)

    lines = LOG.read_text().splitlines()
    if len(lines) < 6:
        print(f"expected >=6 log lines, got {len(lines)}", file=sys.stderr)
        return 1
    events = set()
    for number, line in enumerate(lines, 1):
        try:
            record = json.loads(line)
        except ValueError:
            print(f"line {number} is not valid JSON: {line!r}", file=sys.stderr)
            return 1
        if not isinstance(record, dict):
            print(f"line {number} is not an object: {line!r}", file=sys.stderr)
            return 1
        missing = [key for key in REQUIRED_KEYS if key not in record]
        if missing:
            print(f"line {number} misses {missing}: {line!r}", file=sys.stderr)
            return 1
        if not is_trace_id(record["trace_id"]) and record["trace_id"] != "":
            print(f"line {number} has a bad trace id: {line!r}", file=sys.stderr)
            return 1
        events.add(record["event"])
    if not {"http", "job"} <= events:
        print(f"expected http and job events, saw {sorted(events)}", file=sys.stderr)
        return 1
    print(f"access log OK: {len(lines)} lines, events={sorted(events)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
